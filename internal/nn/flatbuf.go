package nn

import (
	"errors"
	"fmt"
)

// Sentinel errors for the flat-buffer hot path. The combine methods run once
// per bucket per replica per micro-batch; fmt.Errorf would box its arguments
// on every call site the compiler cannot prove cold, so the hot sweeps return
// these preallocated values instead. They all indicate the same programming
// error — parameter sets flattened with different arguments — which the
// engine rules out at construction.
var (
	errFlatLenMismatch = errors.New("nn: flat buffer length mismatch (sets flattened with different arguments)")
	errBucketRange     = errors.New("nn: gradient bucket slice out of the flat buffer's range")
)

// FlatBuffer packs a ParamSet's values and gradients into two contiguous
// float32 buffers, the storage refactor Megatron's data-parallel buffer
// popularized: every Param.Value / Param.Grad becomes a zero-copy view into
// the flat storage, and the gradient bucketization becomes a pure index over
// it — each bucket one contiguous slice, each slice evenly divisible into
// per-replica shards.
//
// The layout is the gradient-production (backward) order GradBuckets already
// uses: the LAST registered parameter sits first, so an overlapped reducer
// walking buckets front to back launches each one as early in the backward
// pass as possible. Buckets are closed when adding the next parameter would
// exceed the guide size, then padded up to a multiple of the shard count —
// padding lives only at bucket tails (= shard boundaries), never between
// parameters, and its elements stay zero on both buffers forever (zero
// values, zero gradients; accumulating or stepping over them is an exact
// no-op).
//
// A flat layout buys three things at once: the sharded collectives
// (reduce-scatter moves bucket slices, not per-parameter tensors), a ZeRO-1
// optimizer whose per-replica state covers one contiguous [lo, hi) element
// range, and a hot path free of per-bucket gradient slice assembly — ZeroGrad
// is one sweep, bucket accumulation is one slice loop.
type FlatBuffer struct {
	values []float32
	grads  []float32
	items  []FlatItem
	bks    []GradBucket
	shards int
	guide  int64 // bucketBytes the index was built with
}

// FlatItem locates one parameter inside the flat buffers.
type FlatItem struct {
	Param  int // index into ParamSet.Params()
	Offset int // element offset of the parameter's slice
	Size   int // elements
	Bucket int // index into Buckets()
}

// Flatten rebuilds the set's storage as one FlatBuffer: current values and
// gradients are copied into the flat buffers and every Param.Value/Param.Grad
// is rebound as a view, so all existing layer wiring keeps working on the
// same Matrix objects. bucketBytes bounds each bucket's gradient payload
// exactly like GradBuckets (<= 0 means one monolithic bucket); shards is the
// replica count the buckets must split evenly across (each bucket is padded
// to a multiple of it; 1 means no padding). Flattening twice is an error —
// the views would otherwise silently detach from the first buffer.
func (ps *ParamSet) Flatten(bucketBytes int64, shards int) (*FlatBuffer, error) {
	if ps.flat != nil {
		return nil, fmt.Errorf("nn: parameter set is already flattened")
	}
	if len(ps.params) == 0 {
		return nil, fmt.Errorf("nn: cannot flatten an empty parameter set")
	}
	if shards < 1 {
		shards = 1
	}
	fb := &FlatBuffer{shards: shards, guide: bucketBytes}
	// Pass 1: bucket membership in backward order, same close rule as
	// GradBuckets so the partition (and therefore every reduce's payload
	// accounting) is identical whether or not the set is flat.
	total := 0
	cur := GradBucket{}
	closeBucket := func() {
		used := int(0)
		for _, i := range cur.Indices {
			used += len(ps.params[i].Grad.Data)
		}
		padded := used
		if rem := used % shards; rem != 0 {
			padded += shards - rem
		}
		cur.Off = total
		cur.Len = padded
		fb.bks = append(fb.bks, cur)
		total += padded
		cur = GradBucket{}
	}
	for i := len(ps.params) - 1; i >= 0; i-- {
		g := ps.params[i].GradBytes()
		if bucketBytes > 0 && len(cur.Indices) > 0 && cur.Bytes+g > bucketBytes {
			closeBucket()
		}
		cur.Indices = append(cur.Indices, i)
		cur.Bytes += g
	}
	closeBucket()
	fb.values = make([]float32, total)
	fb.grads = make([]float32, total)
	fb.items = make([]FlatItem, len(ps.params))
	// Pass 2: place every parameter, copy its current contents, rebind its
	// tensors as views. Items pack contiguously from each bucket's offset;
	// the gap to the bucket's padded end is the only hole in the layout.
	for bi := range fb.bks {
		off := fb.bks[bi].Off
		for _, pi := range fb.bks[bi].Indices {
			p := ps.params[pi]
			n := len(p.Value.Data)
			fb.items[pi] = FlatItem{Param: pi, Offset: off, Size: n, Bucket: bi}
			copy(fb.values[off:off+n], p.Value.Data)
			copy(fb.grads[off:off+n], p.Grad.Data)
			p.Value.Data = fb.values[off : off+n : off+n]
			p.Grad.Data = fb.grads[off : off+n : off+n]
			off += n
		}
	}
	ps.flat = fb
	return fb, nil
}

// Flat returns the set's flat buffer, nil when the set was never flattened.
func (ps *ParamSet) Flat() *FlatBuffer { return ps.flat }

// Values is the whole flat value buffer (padding included).
func (fb *FlatBuffer) Values() []float32 { return fb.values }

// Grads is the whole flat gradient buffer (padding included).
func (fb *FlatBuffer) Grads() []float32 { return fb.grads }

// Items returns the per-parameter index, ParamSet registration order.
func (fb *FlatBuffer) Items() []FlatItem { return fb.items }

// Buckets returns the bucket index: every bucket a contiguous [Off, Off+Len)
// slice of the flat buffers, backward order, padded to the shard count.
func (fb *FlatBuffer) Buckets() []GradBucket { return fb.bks }

// TotalElems is the flat buffers' length: payload plus bucket-tail padding.
func (fb *FlatBuffer) TotalElems() int { return len(fb.grads) }

// Shards is the shard count the layout was built for.
func (fb *FlatBuffer) Shards() int { return fb.shards }

// ShardElems is the element count one replica owns under sharded collectives:
// every bucket splits into equal shard pieces, so each replica's share of the
// whole buffer is exactly TotalElems/Shards.
func (fb *FlatBuffer) ShardElems() int { return len(fb.grads) / fb.shards }

// ShardBytes is one replica's owned share of the flat buffer in bytes: the
// unit a reduce-scatter leaves behind, and the range a ZeRO-1 optimizer
// keeps state for.
func (fb *FlatBuffer) ShardBytes() int64 { return int64(fb.ShardElems()) * 4 }

// PaddingElems is the number of zero filler elements at bucket tails.
func (fb *FlatBuffer) PaddingElems() int {
	pay := 0
	for _, p := range fb.items {
		pay += p.Size
	}
	return len(fb.grads) - pay
}

// ShardRange is replica shard's owned element range [lo, hi) of the whole
// flat buffer under the contiguous per-replica partition: shard s owns the
// s-th of Shards equal pieces.
func (fb *FlatBuffer) ShardRange(shard int) (lo, hi int) {
	se := fb.ShardElems()
	return shard * se, (shard + 1) * se
}

// ZeroGrad clears the whole flat gradient buffer in one sweep.
func (fb *FlatBuffer) ZeroGrad() {
	for i := range fb.grads {
		fb.grads[i] = 0
	}
}

// AccumulateGrads adds src's flat gradients into fb elementwise. Layouts
// must match (same parameters flattened with the same arguments); padding
// elements are zero on both sides, so including them is an exact no-op.
func (fb *FlatBuffer) AccumulateGrads(src *FlatBuffer) error {
	if len(src.grads) != len(fb.grads) {
		return errFlatLenMismatch
	}
	dst, sg := fb.grads, src.grads
	for i := range dst {
		dst[i] += sg[i]
	}
	return nil
}

// AccumulateGradBucket adds src's gradients into fb for one bucket's slice.
// The per-element additions are the same as a per-parameter AddGradsFrom
// sweep restricted to the bucket — element order does not matter, only the
// per-element replica order, which the caller fixes — so bucketed combines
// stay bit-identical to the whole-set sweep.
func (fb *FlatBuffer) AccumulateGradBucket(src *FlatBuffer, b GradBucket) error {
	if len(src.grads) != len(fb.grads) {
		return errFlatLenMismatch
	}
	if b.Off < 0 || b.Len < 0 || b.Off+b.Len > len(fb.grads) {
		return errBucketRange
	}
	dst := fb.grads[b.Off : b.Off+b.Len]
	sg := src.grads[b.Off : b.Off+b.Len]
	for i := range dst {
		dst[i] += sg[i]
	}
	return nil
}

// CopyValuesFrom copies src's whole flat value buffer into fb (replicating a
// model onto another device in one sweep).
func (fb *FlatBuffer) CopyValuesFrom(src *FlatBuffer) error {
	if len(src.values) != len(fb.values) {
		return errFlatLenMismatch
	}
	copy(fb.values, src.values)
	return nil
}
