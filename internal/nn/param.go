// Package nn implements the neural-network stack the GNN layers are built
// from: parameters with gradient buffers, fully connected layers, pointwise
// activations, an LSTM cell with full backpropagation through time, the
// softmax cross-entropy loss, and SGD/Adam optimizers.
//
// There is no autograd tape: every layer exposes an explicit
// Forward/Backward pair with the caller responsible for threading gradients.
// Gradients ACCUMULATE into Param.Grad until ZeroGrad is called, which is
// exactly the semantics Buffalo's micro-batch training relies on
// (Algorithm 2: partial gradients from each bucket group are accumulated
// before one optimizer step).
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"buffalo/internal/tensor"
)

// Param is a trainable tensor with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Matrix
	Grad  *tensor.Matrix
}

// NewParam allocates a zeroed parameter with a matching gradient buffer.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name:  name,
		Value: tensor.New(rows, cols),
		Grad:  tensor.New(rows, cols),
	}
}

// InitXavier fills the parameter with Glorot-uniform values in
// ±sqrt(6/(fanIn+fanOut)) using the given RNG.
func (p *Param) InitXavier(rng *rand.Rand) {
	limit := float32(math.Sqrt(6 / float64(p.Value.Rows+p.Value.Cols)))
	for i := range p.Value.Data {
		p.Value.Data[i] = (2*rng.Float32() - 1) * limit
	}
}

// Bytes reports the parameter's value+gradient storage footprint.
func (p *Param) Bytes() int64 { return p.Value.Bytes() + p.Grad.Bytes() }

// GradBytes reports the gradient buffer's footprint alone: the payload a
// data-parallel all-reduce actually moves (parameter values are replicated,
// never reduced).
func (p *Param) GradBytes() int64 { return p.Grad.Bytes() }

// Sentinel errors for the per-iteration bulk operations below. They flag the
// same programming error — combining sets built from different models — so
// they carry no per-call detail, and the hot path pays no fmt boxing for
// checks that never fire in a correctly wired trainer.
var (
	errParamCountMismatch = errors.New("nn: parameter count mismatch (sets built from different models)")
	errParamShapeMismatch = errors.New("nn: parameter shape mismatch (sets built from different models)")
	errBucketIndexRange   = errors.New("nn: gradient bucket index out of the parameter set's range")
)

// ParamSet is an ordered collection of parameters, the unit optimizers and
// gradient bookkeeping operate on. After Flatten the set's storage lives in
// one FlatBuffer and the bulk operations below (ZeroGrad, CopyValuesFrom,
// AddGradsFrom, AddGradsFromBucket) run as single contiguous sweeps instead
// of per-parameter loops; the numerics are bit-identical either way because
// every one of them is elementwise.
type ParamSet struct {
	params []*Param
	flat   *FlatBuffer
}

// Add registers params; duplicate names are rejected to catch wiring bugs.
func (ps *ParamSet) Add(params ...*Param) error {
	for _, p := range params {
		for _, q := range ps.params {
			if q.Name == p.Name {
				return fmt.Errorf("nn: duplicate parameter %q", p.Name)
			}
		}
		ps.params = append(ps.params, p)
	}
	return nil
}

// MustAdd is Add that panics on duplicates; for package-internal model wiring
// where a duplicate is a programming error.
func (ps *ParamSet) MustAdd(params ...*Param) {
	if err := ps.Add(params...); err != nil {
		panic(err)
	}
}

// Params returns the registered parameters in registration order.
func (ps *ParamSet) Params() []*Param { return ps.params }

// ZeroGrad clears every gradient accumulator.
func (ps *ParamSet) ZeroGrad() {
	if ps.flat != nil {
		ps.flat.ZeroGrad()
		return
	}
	for _, p := range ps.params {
		p.Grad.Zero()
	}
}

// Bytes reports the total value+gradient footprint of the set.
func (ps *ParamSet) Bytes() int64 {
	var b int64
	for _, p := range ps.params {
		b += p.Bytes()
	}
	return b
}

// GradBytes reports the set's total gradient footprint: what one full
// gradient all-reduce moves. Always Bytes()/2 with the value/grad pairing,
// but callers sizing communication must say so explicitly rather than
// halving the combined footprint inline.
func (ps *ParamSet) GradBytes() int64 {
	var b int64
	for _, p := range ps.params {
		b += p.GradBytes()
	}
	return b
}

// ValueBytes reports the parameter values' footprint alone: the fixed
// device-resident state of a forward-only (inference) session, which holds
// no gradient buffers and no optimizer moments.
func (ps *ParamSet) ValueBytes() int64 {
	var b int64
	for _, p := range ps.params {
		b += p.Value.Bytes()
	}
	return b
}

// GradBucket is one size-bounded slice of a ParamSet's gradients: the unit a
// bucketed all-reduce launches as soon as backward has produced every
// gradient in it. Indices index into Params() and stay in backward order
// within and across buckets.
//
// For a flattened set the bucket is additionally a pure slice of the flat
// gradient buffer: [Off, Off+Len) elements, Len padded to a multiple of the
// shard count so reduce-scatter splits it evenly. Off/Len are zero for
// buckets built over unflattened storage.
type GradBucket struct {
	Indices []int
	Bytes   int64 // summed gradient payload of the bucket
	Off     int   // element offset into the flat grad buffer (flat sets only)
	Len     int   // padded element length in the flat grad buffer (flat sets only)
}

// GradBuckets partitions the set's gradients into buckets of at most
// maxBytes gradient payload each, in backward order: the LAST registered
// parameter first, since backward passes produce gradients for the output
// layers before the input layers, and an overlapped reducer wants each
// bucket ready as early in the backward pass as possible. A parameter whose
// gradient alone exceeds maxBytes gets its own bucket (a reduce cannot split
// one tensor). maxBytes <= 0 returns a single bucket holding everything —
// the monolithic reduce.
func (ps *ParamSet) GradBuckets(maxBytes int64) []GradBucket {
	return ps.GradBucketsInto(nil, maxBytes)
}

// GradBucketsInto is GradBuckets appending into dst[:0], reusing dst's bucket
// headers AND their Indices backing, so a caller re-deriving the partition
// (the engine does after every flatten-mode change) pays no steady-state
// allocation. Flattened sets return the flat index itself — the caller's
// scratch is not involved, matching GradBuckets.
func (ps *ParamSet) GradBucketsInto(dst []GradBucket, maxBytes int64) []GradBucket {
	if len(ps.params) == 0 {
		return nil
	}
	if ps.flat != nil {
		// A flattened set's bucketization is fixed at Flatten time (the
		// physical layout IS the bucket index); callers get those buckets —
		// pure slices of the flat buffer — regardless of maxBytes.
		return ps.flat.Buckets()
	}
	// nextBucket recycles dst's retained headers past the current length: the
	// old Indices backing is truncated and refilled, never reallocated while
	// it still fits.
	out := dst[:0]
	nextBucket := func() *GradBucket {
		if len(out) < cap(out) {
			out = out[: len(out)+1 : cap(out)]
			b := &out[len(out)-1]
			*b = GradBucket{Indices: b.Indices[:0]}
			return b
		}
		out = append(out, GradBucket{})
		return &out[len(out)-1]
	}
	cur := nextBucket()
	for i := len(ps.params) - 1; i >= 0; i-- {
		g := ps.params[i].GradBytes()
		if maxBytes > 0 && len(cur.Indices) > 0 && cur.Bytes+g > maxBytes {
			cur = nextBucket()
		}
		cur.Indices = append(cur.Indices, i)
		cur.Bytes += g
	}
	return out
}

// AddGradsFromBucket accumulates src's gradients into ps for exactly the
// parameters of one bucket. Accumulating bucket by bucket in any bucket
// order, with a fixed replica order inside each bucket, performs the same
// per-parameter float additions in the same order as one whole-set
// AddGradsFrom sweep — which is what keeps a bucketed all-reduce bit-
// identical to the sequential combine.
func (ps *ParamSet) AddGradsFromBucket(src *ParamSet, b GradBucket) error {
	if len(ps.params) != len(src.params) {
		return errParamCountMismatch
	}
	if ps.flat != nil && src.flat != nil && b.Len > 0 {
		return ps.flat.AccumulateGradBucket(src.flat, b)
	}
	for _, i := range b.Indices {
		if i < 0 || i >= len(ps.params) {
			return errBucketIndexRange
		}
		ps.params[i].Grad.AddInPlace(src.params[i].Grad)
	}
	return nil
}

// CopyValuesFrom copies parameter values from src (matched by order); used by
// the data-parallel trainer to replicate a model onto several devices.
func (ps *ParamSet) CopyValuesFrom(src *ParamSet) error {
	if len(ps.params) != len(src.params) {
		return errParamCountMismatch
	}
	if ps.flat != nil && src.flat != nil {
		return ps.flat.CopyValuesFrom(src.flat)
	}
	for i, p := range ps.params {
		s := src.params[i]
		if p.Value.Rows != s.Value.Rows || p.Value.Cols != s.Value.Cols {
			return errParamShapeMismatch
		}
		p.Value.CopyFrom(s.Value)
	}
	return nil
}

// AddGradsFrom accumulates src's gradients into ps (all-reduce step of the
// data-parallel trainer).
func (ps *ParamSet) AddGradsFrom(src *ParamSet) error {
	if len(ps.params) != len(src.params) {
		return errParamCountMismatch
	}
	if ps.flat != nil && src.flat != nil {
		return ps.flat.AccumulateGrads(src.flat)
	}
	for i, p := range ps.params {
		p.Grad.AddInPlace(src.params[i].Grad)
	}
	return nil
}

// GradMaxAbs returns the largest absolute gradient entry across the set;
// useful for tests asserting that backward passes actually produce signal.
func (ps *ParamSet) GradMaxAbs() float32 {
	var mx float32
	for _, p := range ps.params {
		if v := p.Grad.MaxAbs(); v > mx {
			mx = v
		}
	}
	return mx
}
