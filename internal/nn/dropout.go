package nn

import (
	"fmt"
	"math/rand"

	"buffalo/internal/tensor"
)

// Dropout implements inverted dropout: at training time each element is
// zeroed with probability P and survivors are scaled by 1/(1-P), so
// inference needs no rescaling. Each Forward draws a fresh mask from the
// layer's RNG; Backward applies the same mask to the upstream gradient.
type Dropout struct {
	P   float64
	rng *rand.Rand
}

// NewDropout builds a dropout layer. P must be in [0, 1).
func NewDropout(p float64, seed int64) (*Dropout, error) {
	if p < 0 || p >= 1 {
		return nil, fmt.Errorf("nn: dropout probability %v outside [0,1)", p)
	}
	return &Dropout{P: p, rng: rand.New(rand.NewSource(seed))}, nil
}

// DropoutMask is the per-forward state Backward needs.
type DropoutMask struct {
	scale float32
	keep  []bool
}

// Bytes reports the mask's footprint (1 byte per element, as a framework
// would store it).
func (m *DropoutMask) Bytes() int64 { return int64(len(m.keep)) }

// Forward samples a mask and applies it, returning the masked activations.
// With P == 0 (or training == false) it returns x unchanged and a nil mask.
func (d *Dropout) Forward(x *tensor.Matrix, training bool) (*tensor.Matrix, *DropoutMask) {
	if !training || d.P == 0 {
		return x, nil
	}
	mask := &DropoutMask{
		scale: float32(1 / (1 - d.P)),
		keep:  make([]bool, len(x.Data)),
	}
	y := tensor.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		if d.rng.Float64() >= d.P {
			mask.keep[i] = true
			y.Data[i] = v * mask.scale
		}
	}
	return y, mask
}

// Backward routes the upstream gradient through the forward mask. A nil
// mask (inference or P == 0) passes dy through unchanged.
func (d *Dropout) Backward(mask *DropoutMask, dy *tensor.Matrix) *tensor.Matrix {
	if mask == nil {
		return dy
	}
	dx := tensor.New(dy.Rows, dy.Cols)
	for i, keep := range mask.keep {
		if keep {
			dx.Data[i] = dy.Data[i] * mask.scale
		}
	}
	return dx
}
