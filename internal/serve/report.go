package serve

import (
	"buffalo/internal/obs"
	"buffalo/internal/obs/report"
)

// BuildManifest assembles a serving run's manifest: the resolved config and
// batching policy, the serving section (SLO quantiles, shed/batch counters),
// the device's ledger summary (with the reconstructed peak set when a
// complete trace exists), cache state, and the metrics snapshot with the
// estimator's inference-regime error distribution. Diff/gate-compatible
// with training manifests — shared keys align, serving keys extend.
func (s *Server) BuildManifest(dataset string) *report.Manifest {
	m := report.New("buffalo-serve")
	cfg := s.sess.Cfg
	m.Config = report.Config{
		System:         "serve",
		Dataset:        dataset,
		Arch:           string(cfg.Model.Arch),
		Aggregator:     string(cfg.Model.Aggregator),
		Layers:         cfg.Model.Layers,
		Hidden:         cfg.Model.Hidden,
		Fanouts:        cfg.Fanouts,
		BatchSize:      s.cfg.BatchSize,
		MemBudgetBytes: cfg.MemBudget,
		Seed:           cfg.Seed,
	}
	m.Config.CacheBudgetBytes = s.sess.CacheBudget()
	st := s.Stats()
	m.Serving = &report.Serving{
		Requests:       st.Requests,
		Responses:      st.Responses,
		Shed:           st.Shed,
		Canceled:       st.Canceled,
		Batches:        st.Batches,
		ExecErrors:     st.ExecErrors,
		BatchSize:      s.cfg.BatchSize,
		MaxWaitNs:      int64(s.cfg.MaxWait),
		AvgBatchSize:   st.AvgBatchSize,
		ThroughputRPS:  st.ThroughputRPS,
		LatencyP50Ns:   int64(st.LatencyP50),
		LatencyP90Ns:   int64(st.LatencyP90),
		LatencyP99Ns:   int64(st.LatencyP99),
		QueueWaitP50Ns: int64(st.QueueWaitP50),
		QueueWaitP99Ns: int64(st.QueueWaitP99),
	}
	if pst := s.sess.PoolStats(); pst.Hits+pst.Misses > 0 {
		m.Pooling = &report.Pooling{
			Hits: pst.Hits, Misses: pst.Misses, Resizes: pst.Resizes,
			Outstanding: pst.Outstanding,
			HitRate:     float64(pst.Hits) / float64(pst.Hits+pst.Misses),
		}
	}
	if c := st.Cache; c.Hits+c.Misses > 0 {
		hitRate := float64(c.Hits) / float64(c.Hits+c.Misses)
		m.Cache = &report.Cache{
			Entries: c.Entries, UsedBytes: c.UsedBytes,
			Hits: c.Hits, Misses: c.Misses, Evictions: c.Evictions,
			HitRate: hitRate,
		}
	}
	dst := s.sess.GPU.Stats()
	d := report.Device{
		Name:             dst.Name,
		CapacityBytes:    dst.Capacity,
		PeakBytes:        dst.Peak,
		FinalLiveBytes:   dst.Live,
		TransferredBytes: dst.Transferred,
		TransferNs:       int64(dst.TransferTime),
		ComputeNs:        int64(dst.ComputeTime),
		StallNs:          int64(dst.StallTime),
	}
	if tr := s.rec.Trace(); tr != nil && tr.Dropped() == 0 {
		tl := obs.Reconstruct(tr.Events(), dst.Name)
		d.OOMs = tl.OOMs
		for _, a := range tl.PeakSet {
			d.PeakSet = append(d.PeakSet, report.TagBytes{Tag: a.Tag, Bytes: a.Bytes})
		}
	}
	m.Devices = append(m.Devices, d)
	if reg := s.rec.Metrics(); reg != nil {
		m.Metrics = reg.Snapshot()
		m.Estimator = report.EstimatorFromMetrics(reg)
	}
	return m
}
