package serve

import (
	"time"

	"buffalo/internal/graph"
	"buffalo/internal/obs"
)

// batcher is the coalescing goroutine: it assembles requests into batches
// under the BatchSize/MaxWait policy, drops requests whose context died
// while coalescing, charges each sealed batch's admission reservation to
// the GPU ledger, and hands admitted batches to the executor over the
// bounded queue. Memory pressure and a full queue both shed the batch —
// the server degrades to ErrOverloaded, never to a device OOM.
//
// The MaxWait timer is armed when a batch's first request arrives and
// stopped on every dispatch; the select below is timer-driven only while a
// partial batch exists, so an idle server blocks on intake alone.
func (s *Server) batcher() {
	defer close(s.execQ)
	batch := make([]*pending, 0, s.cfg.BatchSize)
	timer := time.NewTimer(s.cfg.MaxWait)
	if !timer.Stop() {
		<-timer.C
	}
	dispatch := func() {
		s.seal(batch)
		batch = batch[:0]
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
	for {
		if len(batch) == 0 {
			select {
			case p := <-s.reqs:
				batch = append(batch, p)
				if len(batch) >= s.cfg.BatchSize {
					dispatch()
				} else {
					timer.Reset(s.cfg.MaxWait)
				}
			case <-s.quit:
				s.drain(batch)
				return
			}
			continue
		}
		select {
		case p := <-s.reqs:
			batch = append(batch, p)
			if len(batch) >= s.cfg.BatchSize {
				dispatch()
			}
		case <-timer.C:
			// MaxWait expired: the partial batch goes as-is. Latency wins
			// over batching efficiency once the first request has waited
			// its budget.
			s.seal(batch)
			batch = batch[:0]
		case <-s.quit:
			s.drain(batch)
			return
		}
	}
}

// drain empties the intake channel after Close: every request accepted
// before shutdown is still served, in batches of up to BatchSize.
func (s *Server) drain(batch []*pending) {
	for {
		select {
		case p := <-s.reqs:
			batch = append(batch, p)
			if len(batch) >= s.cfg.BatchSize {
				s.seal(batch)
				batch = batch[:0]
			}
		default:
			s.seal(batch)
			return
		}
	}
}

// seal finalizes one batch: drop dead requests, charge the admission
// reservation, and enqueue for execution — or shed the whole batch when
// the ledger or the executor queue has no room.
func (s *Server) seal(batch []*pending) {
	live := batch[:0:len(batch)]
	for _, p := range batch {
		if err := p.ctx.Err(); err != nil {
			s.canceled.Add(1)
			s.mCanceled.Add(1)
			p.resp <- response{err: err}
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}
	reserve := int64(len(live)) * s.reservePerReq
	ref, ok := s.admit(reserve)
	if !ok {
		s.shedBatch(live, reserve)
		return
	}
	sb := &sealed{reqs: append([]*pending(nil), live...), reserve: ref}
	select {
	case s.execQ <- sb:
		s.mBatches.Add(1)
		s.rec.Span(obs.KindDispatch, "serve", "batch", 0, reserve, int64(len(live)))
	default:
		// Executor queue full: QueueLimit batches are already waiting, so
		// this one's latency is lost either way — shed it and release its
		// reservation.
		ref.release()
		s.shedBatch(live, reserve)
	}
}

// admit charges a sealed batch's predicted bytes to the ledger. It refuses
// when the reservation would eat into the margin held back for the
// executing batch's transient activations — admission is the gate that
// keeps the executor's K-search feasible, so a reservation must never be
// the allocation that OOMs.
func (s *Server) admit(reserve int64) (*allocRef, bool) {
	gpu := s.sess.GPU
	headroom := gpu.Capacity() - gpu.Live()
	if reserve > headroom-s.margin {
		return nil, false
	}
	a, err := gpu.Alloc("serve/admission", reserve)
	if err != nil {
		// The executor allocated concurrently with the headroom check;
		// treat the lost race as a shed, same as a failed precheck.
		return nil, false
	}
	return &allocRef{alloc: a}, true
}

// shedBatch answers every request in a refused batch with ErrOverloaded.
func (s *Server) shedBatch(batch []*pending, reserve int64) {
	s.shed.Add(int64(len(batch)))
	s.mShed.Add(int64(len(batch)))
	s.rec.Event(obs.KindMark, "serve", "shed", reserve, 0, int64(len(batch)))
	for _, p := range batch {
		p.resp <- response{err: ErrOverloaded}
	}
}

// executor is the consuming goroutine: it owns the InferenceSession, frees
// each batch's admission reservation as execution begins (the real feature
// and activation allocations replace it, and the K-search plans against
// the honest remaining headroom, which still carries every queued batch's
// reservation), runs the coalesced batch, and fans results back out.
func (s *Server) executor() {
	defer close(s.done)
	for sb := range s.execQ {
		tExec := time.Now()
		sb.reserve.release()
		live := sb.reqs[:0:len(sb.reqs)]
		for _, p := range sb.reqs {
			if err := p.ctx.Err(); err != nil {
				s.canceled.Add(1)
				s.mCanceled.Add(1)
				p.resp <- response{err: err}
				continue
			}
			live = append(live, p)
		}
		if len(live) == 0 {
			continue
		}
		nodes := make([]graph.NodeID, len(live))
		for i, p := range live {
			nodes[i] = p.node
		}
		res, err := s.sess.Infer(nodes)
		if err != nil {
			s.execErrors.Add(1)
			for _, p := range live {
				p.resp <- response{err: err}
			}
			continue
		}
		s.batches.Add(1)
		s.hAssembly.Observe(int64(res.Breakdown.Assembly()))
		s.hH2D.Observe(int64(res.Breakdown.H2D))
		s.hCompute.Observe(int64(res.Breakdown.Compute))
		for _, p := range live {
			wait := tExec.Sub(p.enq)
			lat := time.Since(p.enq)
			s.responses.Add(1)
			s.mResponses.Add(1)
			s.hQueueWait.Observe(int64(wait))
			s.hLatency.Observe(int64(lat))
			s.rec.Span(obs.KindDispatch, "serve", "queue-wait", wait, 0, int64(len(live)))
			p.resp <- response{
				class:     res.Classes[p.node],
				queueWait: wait,
				batchSize: len(live),
			}
		}
	}
}
