// Package serve is the online inference layer over the Buffalo engine: a
// channel-based micro-batching front-end that coalesces concurrent
// per-node inference requests into batches under a BatchSize/MaxWait
// policy, an admission controller that charges pending batches against the
// GPU ledger (shedding load instead of OOMing, the serving mirror of the
// pipeline's headroom gate), and SLO instrumentation — p50/p90/p99 latency
// and throughput via internal/obs histograms, surfaced in the run manifest's
// serving section.
//
// Execution is the forward-only train.InferenceSession: every coalesced
// batch rides the sample → ForwardOnly K-search → block-gen → execute
// spine, so a batch too large for the moment's headroom splits into
// micro-batches instead of failing. One executor goroutine owns the
// session; the batcher goroutine owns coalescing and admission. Requests
// flow intake channel → batcher → bounded executor queue, with shedding at
// two gates: a full intake channel (per-request backlog) and the ledger
// reservation at batch-seal time (memory backlog).
package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"buffalo/internal/device"
	"buffalo/internal/graph"
	"buffalo/internal/obs"
	"buffalo/internal/pipeline"
	"buffalo/internal/train"
)

// Shed and shutdown sentinels. ErrOverloaded is retryable backpressure;
// ErrClosed is terminal.
var (
	ErrOverloaded = errors.New("serve: overloaded, request shed")
	ErrClosed     = errors.New("serve: server closed")
)

// Config tunes the micro-batching and admission policy.
type Config struct {
	// BatchSize is the most requests one batch coalesces; a full batch
	// dispatches immediately. 0 defaults to 32.
	BatchSize int
	// MaxWait bounds how long the first request of a batch waits for
	// company before a partial batch dispatches. 0 defaults to 2ms.
	MaxWait time.Duration
	// QueueLimit bounds the sealed batches waiting for the executor; a full
	// queue sheds the next sealed batch. 0 defaults to 2.
	QueueLimit int
	// ReservePerRequest is the admission charge per queued request, in
	// bytes. 0 calibrates it from a warm-up inference at construction: the
	// ForwardOnly estimator's per-request activation footprint plus 25%.
	ReservePerRequest int64
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 2
	}
	return c
}

// Prediction is one answered request.
type Prediction struct {
	// Class is the logits argmax for the requested node.
	Class int32
	// QueueWait is how long the request sat between arrival and its batch
	// starting execution (coalescing window + executor queue).
	QueueWait time.Duration
	// BatchSize is how many requests shared the batch.
	BatchSize int
}

type response struct {
	class     int32
	err       error
	queueWait time.Duration
	batchSize int
}

// pending is one in-flight request between Infer and the executor.
type pending struct {
	node graph.NodeID
	ctx  context.Context
	enq  time.Time
	resp chan response // buffered(1); exactly one send ever
}

// sealed is one admitted batch waiting for the executor, carrying its
// admission reservation on the ledger.
type sealed struct {
	reqs    []*pending
	reserve *allocRef
}

// allocRef wraps the admission reservation so shed paths and the executor
// free it exactly once.
type allocRef struct {
	alloc *device.Allocation
	once  sync.Once
}

func (a *allocRef) release() {
	if a != nil {
		a.once.Do(a.alloc.Free)
	}
}

// Server coalesces concurrent Infer calls into batches over one
// InferenceSession. Construct with NewServer, stop with Close.
type Server struct {
	cfg  Config
	sess *train.InferenceSession
	rec  *obs.Recorder

	reqs  chan *pending
	execQ chan *sealed
	quit  chan struct{} // closed by Close; stops intake, batcher drains
	done  chan struct{} // closed when the executor has drained everything
	stop  sync.Once

	reservePerReq int64 // admission charge per queued request
	margin        int64 // headroom held back for the executing batch

	started time.Time

	// Lifecycle counters (atomics, so Stats works without a metrics
	// registry); the registry instruments below mirror them when attached.
	requests, responses, shed, canceled, batches, execErrors atomic.Int64

	mRequests, mResponses, mShed, mCanceled, mBatches *obs.Counter
	hLatency, hQueueWait, hAssembly, hH2D, hCompute   *obs.Histogram
}

// NewServer wires a server over the session and starts its batcher and
// executor goroutines. When cfg.ReservePerRequest is zero, a warm-up batch
// of BatchSize requests calibrates the admission charge (and warms the
// session's caches); its traffic is not counted in the server's stats.
func NewServer(sess *train.InferenceSession, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:  cfg,
		sess: sess,
		rec:  sess.Cfg.Obs,
		// The intake buffer is one assembling batch plus one of slack:
		// deeper per-request buffering only hides queue-wait the SLO
		// histograms should see.
		reqs:  make(chan *pending, 2*cfg.BatchSize),
		execQ: make(chan *sealed, cfg.QueueLimit),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if reg := s.rec.Metrics(); reg != nil {
		s.mRequests = reg.Counter("serve/requests")
		s.mResponses = reg.Counter("serve/responses")
		s.mShed = reg.Counter("serve/shed")
		s.mCanceled = reg.Counter("serve/canceled")
		s.mBatches = reg.Counter("serve/batches")
		s.hLatency = reg.Histogram("serve/latency_ns", obs.LatencyBuckets)
		s.hQueueWait = reg.Histogram("serve/queue_wait_ns", obs.LatencyBuckets)
		s.hAssembly = reg.Histogram("serve/assembly_ns", obs.LatencyBuckets)
		s.hH2D = reg.Histogram("serve/h2d_ns", obs.LatencyBuckets)
		s.hCompute = reg.Histogram("serve/compute_ns", obs.LatencyBuckets)
	}
	s.reservePerReq = cfg.ReservePerRequest
	if s.reservePerReq <= 0 {
		if err := s.calibrate(); err != nil {
			return nil, err
		}
	}
	s.margin = s.reservePerReq * int64(cfg.BatchSize)
	s.started = time.Now()
	go s.batcher()
	go s.executor()
	return s, nil
}

// calibrate runs one warm-up batch of BatchSize distinct nodes and sets the
// per-request admission charge to the ForwardOnly estimator's per-request
// activation footprint plus 25% slack (transients and estimator error ride
// on top of the estimate).
func (s *Server) calibrate() error {
	n := s.cfg.BatchSize
	if max := s.sess.Data.Graph.NumNodes(); n > max {
		n = max
	}
	nodes := make([]graph.NodeID, n)
	for i := range nodes {
		nodes[i] = graph.NodeID(i)
	}
	resident := s.sess.GPU.Live()
	res, err := s.sess.Infer(nodes)
	if err != nil {
		return err
	}
	perReq := (res.PredictedPeak - resident) / int64(n)
	if perReq < 1 {
		perReq = 1
	}
	s.reservePerReq = perReq * 5 / 4
	return nil
}

// Infer submits one node's inference request and blocks for its prediction.
// Backpressure surfaces as ErrOverloaded (full intake queue, or the
// admission controller shed the request's batch); a canceled ctx returns
// its error. Requests racing Close may get ErrClosed.
func (s *Server) Infer(ctx context.Context, node graph.NodeID) (Prediction, error) {
	select {
	case <-s.quit:
		return Prediction{}, ErrClosed
	default:
	}
	p := &pending{node: node, ctx: ctx, enq: time.Now(), resp: make(chan response, 1)}
	s.requests.Add(1)
	s.mRequests.Add(1)
	select {
	case s.reqs <- p:
	case <-s.quit:
		return Prediction{}, ErrClosed
	default:
		// Intake full: the batcher is behind on whole batches; shedding at
		// the door beats queueing latency the SLO cannot recover.
		s.shed.Add(1)
		s.mShed.Add(1)
		return Prediction{}, ErrOverloaded
	}
	select {
	case r := <-p.resp:
		if r.err != nil {
			return Prediction{}, r.err
		}
		return Prediction{Class: r.class, QueueWait: r.queueWait, BatchSize: r.batchSize}, nil
	case <-ctx.Done():
		// The batcher drops canceled requests at seal time; the buffered
		// response (if one raced in) is garbage-collected with p.
		return Prediction{}, ctx.Err()
	case <-s.done:
		select {
		case r := <-p.resp:
			if r.err != nil {
				return Prediction{}, r.err
			}
			return Prediction{Class: r.class, QueueWait: r.queueWait, BatchSize: r.batchSize}, nil
		default:
			return Prediction{}, ErrClosed
		}
	}
}

// Close stops intake, flushes the assembling batch, serves every already
// accepted request, and blocks until both goroutines have exited. The
// session itself stays open (the caller owns it).
func (s *Server) Close() {
	s.stop.Do(func() { close(s.quit) })
	<-s.done
}

// Stats is the server's lifecycle summary. Latency quantiles are read from
// the obs histograms and are zero when the session has no metrics registry.
type Stats struct {
	Requests   int64
	Responses  int64
	Shed       int64
	Canceled   int64
	Batches    int64
	ExecErrors int64
	// AvgBatchSize is responses per executed batch.
	AvgBatchSize float64
	// ThroughputRPS is responses per wall second since the server started.
	ThroughputRPS float64
	LatencyP50    time.Duration
	LatencyP90    time.Duration
	LatencyP99    time.Duration
	QueueWaitP50  time.Duration
	QueueWaitP99  time.Duration
	Cache         pipeline.CacheStats
}

// Stats snapshots the server's counters and SLO quantiles.
func (s *Server) Stats() Stats {
	st := Stats{
		Requests:   s.requests.Load(),
		Responses:  s.responses.Load(),
		Shed:       s.shed.Load(),
		Canceled:   s.canceled.Load(),
		Batches:    s.batches.Load(),
		ExecErrors: s.execErrors.Load(),
		Cache:      s.sess.CacheStats(),
	}
	if st.Batches > 0 {
		st.AvgBatchSize = float64(st.Responses) / float64(st.Batches)
	}
	if el := time.Since(s.started).Seconds(); el > 0 {
		st.ThroughputRPS = float64(st.Responses) / el
	}
	if s.hLatency.Count() > 0 {
		st.LatencyP50 = time.Duration(s.hLatency.Quantile(0.50))
		st.LatencyP90 = time.Duration(s.hLatency.Quantile(0.90))
		st.LatencyP99 = time.Duration(s.hLatency.Quantile(0.99))
	}
	if s.hQueueWait.Count() > 0 {
		st.QueueWaitP50 = time.Duration(s.hQueueWait.Quantile(0.50))
		st.QueueWaitP99 = time.Duration(s.hQueueWait.Quantile(0.99))
	}
	return st
}
