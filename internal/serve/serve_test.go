package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"buffalo/internal/datagen"
	"buffalo/internal/device"
	"buffalo/internal/gnn"
	"buffalo/internal/graph"
	"buffalo/internal/obs"
	"buffalo/internal/train"
)

func testSession(t testing.TB, budget, cacheBudget int64) *train.InferenceSession {
	t.Helper()
	ds, err := datagen.Load("cora", 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := train.Config{
		System: train.Buffalo,
		Model: gnn.Config{
			Arch: gnn.SAGE, Aggregator: gnn.Mean, Layers: 2,
			InDim: ds.FeatDim(), Hidden: 32, OutDim: ds.NumClasses, Seed: 1,
		},
		Fanouts:   []int{10, 25},
		BatchSize: 256,
		MemBudget: budget,
		Seed:      7,
		Obs:       obs.NewRecorder(nil, obs.NewMetrics()),
	}
	sess, err := train.NewInferenceSession(ds, cfg, cacheBudget)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sess.Close)
	return sess
}

// TestMaxWaitPartialFire: a single request in a wide batch window must still
// be answered once MaxWait expires — the partial batch dispatches alone.
func TestMaxWaitPartialFire(t *testing.T) {
	sess := testSession(t, 256*device.MB, 0)
	srv, err := NewServer(sess, Config{BatchSize: 32, MaxWait: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	t0 := time.Now()
	p, err := srv.Infer(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.BatchSize != 1 {
		t.Errorf("BatchSize = %d, want 1 (partial fire)", p.BatchSize)
	}
	if el := time.Since(t0); el < 5*time.Millisecond {
		t.Errorf("answered in %v, before the %v window expired", el, 5*time.Millisecond)
	}
}

// TestBatchSizeEarlyFire: a full batch must dispatch immediately, long before
// an (absurdly long) MaxWait.
func TestBatchSizeEarlyFire(t *testing.T) {
	sess := testSession(t, 256*device.MB, 0)
	const n = 4
	srv, err := NewServer(sess, Config{BatchSize: n, MaxWait: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	t0 := time.Now()
	var wg sync.WaitGroup
	preds := make([]Prediction, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			preds[i], errs[i] = srv.Infer(context.Background(), graph.NodeID(i))
		}(i)
	}
	wg.Wait()
	if el := time.Since(t0); el > 10*time.Second {
		t.Fatalf("full batch took %v; early fire did not trigger", el)
	}
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if preds[i].BatchSize != n {
			t.Errorf("request %d: BatchSize = %d, want %d", i, preds[i].BatchSize, n)
		}
	}
}

// TestCancelMidCoalesce: a request whose context dies while its batch is
// assembling returns the context error to the caller and is dropped at seal
// time (counted, not executed).
func TestCancelMidCoalesce(t *testing.T) {
	sess := testSession(t, 256*device.MB, 0)
	srv, err := NewServer(sess, Config{BatchSize: 32, MaxWait: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := srv.Infer(ctx, 5)
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the request reach the batcher
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	srv.Close()
	if c := srv.Stats().Canceled; c != 1 {
		t.Errorf("Canceled = %d, want 1", c)
	}
	if r := srv.Stats().Responses; r != 0 {
		t.Errorf("Responses = %d, want 0 (canceled request must not execute)", r)
	}
}

// TestShutdownDrain: requests accepted before Close — still coalescing when
// it is called — are served, not dropped.
func TestShutdownDrain(t *testing.T) {
	sess := testSession(t, 256*device.MB, 0)
	srv, err := NewServer(sess, Config{BatchSize: 32, MaxWait: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = srv.Infer(context.Background(), graph.NodeID(i))
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // all 8 in the assembling batch
	srv.Close()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d after Close: %v", i, err)
		}
	}
	if got := srv.Stats().Responses; got != n {
		t.Errorf("Responses = %d, want %d (drain must serve accepted requests)", got, n)
	}
}

// TestInferAfterCloseRefuses: new requests after Close get ErrClosed.
func TestInferAfterCloseRefuses(t *testing.T) {
	sess := testSession(t, 256*device.MB, 0)
	srv, err := NewServer(sess, Config{BatchSize: 4, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := srv.Infer(context.Background(), 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

// TestOverloadShedsNotOOMs: when the ledger has no admissible headroom the
// server must shed (ErrOverloaded), never surface a device OOM or execution
// error, and recover as soon as the pressure lifts. The pressure is applied
// directly on the ledger — a foreign allocation eating the headroom — so the
// admission gate's refusal is arithmetic, not a scheduler race (this must
// hold on a single-CPU host where bursts serialize cooperatively).
func TestOverloadShedsNotOOMs(t *testing.T) {
	sess := testSession(t, 16*device.MB, 0)
	// Pinned 3MB/request reservation on a 16MB device: margin 2x3MB, so a
	// batch-of-1 seal (3MB) is refused exactly when live exceeds 7MB.
	srv, err := NewServer(sess, Config{
		BatchSize: 2, MaxWait: 100 * time.Microsecond,
		QueueLimit: 2, ReservePerRequest: 3 * device.MB,
	})
	if err != nil {
		t.Fatal(err)
	}
	pressure, err := sess.GPU.Alloc("test/pressure", 10*device.MB)
	if err != nil {
		t.Fatal(err)
	}
	var shed int
	for i := 0; i < 10; i++ {
		_, err := srv.Infer(context.Background(), graph.NodeID(i))
		switch {
		case errors.Is(err, ErrOverloaded):
			shed++
		case err != nil:
			t.Fatalf("request %d under pressure: %v (must shed, not fail)", i, err)
		}
	}
	if shed == 0 {
		t.Error("no requests shed with 10MB of the 16MB device held foreign")
	}
	pressure.Free()
	if _, err := srv.Infer(context.Background(), 42); err != nil {
		t.Fatalf("request after pressure lifted: %v (server must recover)", err)
	}
	srv.Close()
	if st := srv.Stats(); st.ExecErrors != 0 {
		t.Errorf("ExecErrors = %d, want 0 (admission must prevent execution OOMs)", st.ExecErrors)
	}
	if live, want := sess.GPU.Live(), sess.Model.Params.ValueBytes(); live != want {
		t.Errorf("ledger live = %d after Close, want fixed footprint %d (reservation leak)", live, want)
	}
}

// TestCloseReleasesGoroutines: Close must terminate the batcher and executor;
// repeated Close is safe.
func TestCloseReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		sess := testSession(t, 256*device.MB, 0)
		srv, err := NewServer(sess, Config{BatchSize: 4, MaxWait: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Infer(context.Background(), 1); err != nil {
			t.Fatal(err)
		}
		srv.Close()
		srv.Close() // idempotent
	}
	// Goroutine counts settle asynchronously; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after three server lifecycles", before, runtime.NumGoroutine())
}

// TestStatsQuantiles: with a metrics registry attached, the latency SLO
// quantiles are populated and ordered.
func TestStatsQuantiles(t *testing.T) {
	sess := testSession(t, 256*device.MB, 0)
	srv, err := NewServer(sess, Config{BatchSize: 4, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 20; i++ {
		if _, err := srv.Infer(context.Background(), graph.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.LatencyP50 <= 0 {
		t.Fatal("LatencyP50 not populated")
	}
	if st.LatencyP50 > st.LatencyP90 || st.LatencyP90 > st.LatencyP99 {
		t.Errorf("quantiles not ordered: p50=%v p90=%v p99=%v",
			st.LatencyP50, st.LatencyP90, st.LatencyP99)
	}
	if st.ThroughputRPS <= 0 {
		t.Error("ThroughputRPS not populated")
	}
}
