package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"buffalo/internal/graph"
)

// Picker chooses the node of the next generated request. Pickers returned
// by NewPicker are not safe for concurrent use; the generators create one
// per client goroutine via a PickerFactory.
type Picker func() graph.NodeID

// PickerFactory builds an independent Picker per client from a seed.
type PickerFactory func(seed int64) Picker

// UniformPicker draws nodes uniformly from [0, n).
func UniformPicker(n int) PickerFactory {
	return func(seed int64) Picker {
		rng := rand.New(rand.NewSource(seed))
		return func() graph.NodeID {
			return graph.NodeID(rng.Intn(n))
		}
	}
}

// ZipfPicker draws nodes Zipf-distributed over [0, n) with exponent skew
// (> 1; larger = more concentrated). Skewed request traffic is where the
// degree-aware feature cache earns its budget: a small hot set of nodes
// (and their sampled neighborhoods) covers most requests.
func ZipfPicker(n int, skew float64) PickerFactory {
	if skew <= 1 {
		skew = 1.01
	}
	return func(seed int64) Picker {
		rng := rand.New(rand.NewSource(seed))
		z := rand.NewZipf(rng, skew, 1, uint64(n-1))
		return func() graph.NodeID {
			return graph.NodeID(z.Uint64())
		}
	}
}

// LoadResult summarizes one generator run from the client side. The
// server-side view (batch sizes, SLO quantiles) is Server.Stats.
type LoadResult struct {
	Offered   int64 // requests issued
	Completed int64 // answered with a prediction
	Shed      int64 // refused with ErrOverloaded
	Errors    int64 // any other failure
	Elapsed   time.Duration
}

// ClosedLoop drives the server with clients synchronous workers issuing
// perClient requests each: every client waits for its response before the
// next request, so offered load self-limits to the server's capacity — the
// arrival model of a fixed user population.
func ClosedLoop(srv *Server, clients, perClient int, pf PickerFactory, seed int64) LoadResult {
	var res LoadResult
	var completed, shed, errs atomic.Int64
	t0 := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			pick := pf(seed + int64(c))
			for i := 0; i < perClient; i++ {
				_, err := srv.Infer(context.Background(), pick())
				switch {
				case err == nil:
					completed.Add(1)
				case errors.Is(err, ErrOverloaded):
					shed.Add(1)
				default:
					errs.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	res.Offered = int64(clients) * int64(perClient)
	res.Completed = completed.Load()
	res.Shed = shed.Load()
	res.Errors = errs.Load()
	res.Elapsed = time.Since(t0)
	return res
}

// OpenLoop issues total requests at a fixed rate (requests/second)
// regardless of completions — the arrival model of independent external
// traffic, which keeps offering load when the server falls behind. Each
// request runs in its own goroutine; all are joined before returning.
func OpenLoop(srv *Server, rate float64, total int, pf PickerFactory, seed int64) LoadResult {
	if rate <= 0 {
		rate = 1
	}
	interval := time.Duration(float64(time.Second) / rate)
	var completed, shed, errs atomic.Int64
	pick := pf(seed)
	t0 := time.Now()
	var wg sync.WaitGroup
	next := time.Now()
	for i := 0; i < total; i++ {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		next = next.Add(interval)
		node := pick()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := srv.Infer(context.Background(), node)
			switch {
			case err == nil:
				completed.Add(1)
			case errors.Is(err, ErrOverloaded):
				shed.Add(1)
			default:
				errs.Add(1)
			}
		}()
	}
	wg.Wait()
	return LoadResult{
		Offered:   int64(total),
		Completed: completed.Load(),
		Shed:      shed.Load(),
		Errors:    errs.Load(),
		Elapsed:   time.Since(t0),
	}
}
