// Package fixture seeds errcheck violations for the analyzer's unit test.
package fixture

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"buffalo/internal/device"
)

// Drops discards the error of a call that can fail.
func Drops() {
	os.Remove("/tmp/buffalo-vet-fixture") // want:errcheck
}

// GoDrop discards an error inside a go statement.
func GoDrop() {
	go os.Remove("/tmp/buffalo-vet-fixture") // want:errcheck
}

// DeferDrop discards a deferred Close error on a written file.
func DeferDrop(f *os.File) {
	defer f.Close() // want:errcheck
}

// Checked handles the error: clean.
func Checked() error {
	if err := os.Remove("/tmp/buffalo-vet-fixture"); err != nil {
		return err
	}
	return nil
}

// Deliberate discards explicitly, which is reviewable: clean.
func Deliberate() {
	_ = os.Remove("/tmp/buffalo-vet-fixture")
}

// ExportDrop mimics a trace exporter that drops write errors: a truncated
// file would look like a successful export. fmt.Fprint* is only exempt when
// the destination is a std stream, not an arbitrary io.Writer.
func ExportDrop(w io.Writer, events []int64) {
	fmt.Fprintln(w, "[")          // want:errcheck
	json.NewEncoder(w).Encode(42) // want:errcheck
	for _, e := range events {
		fmt.Fprintf(w, "%d\n", e) // want:errcheck
	}
}

// ExportPropagates is the reviewable exporter shape — every write error
// reaches the caller: clean.
func ExportPropagates(w io.Writer, events []int64) error {
	if _, err := fmt.Fprintln(w, "["); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "]")
	return err
}

// boundedQueue mimics the pipeline loader's queue: Push fails on shutdown,
// and Close reports the first stage error. Dropping either hides a dead
// pipeline behind an apparently healthy training loop.
type boundedQueue struct{ ch chan int }

func (q *boundedQueue) Push(v int) error {
	select {
	case q.ch <- v:
		return nil
	default:
		return io.ErrClosedPipe
	}
}

func (q *boundedQueue) Close() error { return io.ErrClosedPipe }

// StageDrop pushes to the next stage without checking for shutdown.
func StageDrop(q *boundedQueue) {
	q.Push(1) // want:errcheck
}

// ShutdownDrop discards the pipeline's first-error on teardown.
func ShutdownDrop(q *boundedQueue) {
	defer q.Close() // want:errcheck
}

// StagePropagates is the reviewable stage shape — a failed push unwinds the
// stage: clean.
func StagePropagates(q *boundedQueue) error {
	if err := q.Push(1); err != nil {
		return err
	}
	return q.Close()
}

// laneQueue mimics the multi-GPU fan-out: one bounded queue per replica,
// where a failed push or pop means the shared pipeline has shut down.
type laneQueue struct{ lanes []chan int }

func (q *laneQueue) Push(lane, v int) error {
	select {
	case q.lanes[lane] <- v:
		return nil
	default:
		return io.ErrClosedPipe
	}
}

func (q *laneQueue) Pop(lane int) (int, error) {
	select {
	case v := <-q.lanes[lane]:
		return v, nil
	default:
		return 0, io.ErrClosedPipe
	}
}

// DispatchDrop deals work round-robin without checking for a closed lane:
// a dead replica's micro-batches silently vanish.
func DispatchDrop(q *laneQueue, items []int) {
	for i, v := range items {
		q.Push(i%len(q.lanes), v) // want:errcheck
	}
}

// ConsumeDrop discards a lane pop's shutdown error along with its value.
func ConsumeDrop(q *laneQueue) {
	q.Pop(0) // want:errcheck
}

// DispatchPropagates is the reviewable fan-out shape — the first closed
// lane unwinds the dispatcher: clean.
func DispatchPropagates(q *laneQueue, items []int) error {
	for i, v := range items {
		if err := q.Push(i%len(q.lanes), v); err != nil {
			return err
		}
	}
	return nil
}

// reorder mimics the planner pool's sequence-number reorder buffer: Put
// fails on a duplicate or out-of-window sequence (a planner bug) or on
// shutdown, and Pop's error is the only way a consumer learns the pool
// died. Dropping either turns a wedged planner pool into a silent hang.
type reorder struct{ next uint64 }

func (r *reorder) Put(seq uint64, v int) error {
	if seq < r.next {
		return io.ErrClosedPipe
	}
	return nil
}

func (r *reorder) Pop() (int, error) { return 0, io.ErrClosedPipe }

// PlannerDrop delivers a plan without checking for a dead or out-of-order
// buffer: the worker keeps planning batches nobody will consume.
func PlannerDrop(r *reorder, seq uint64) {
	r.Put(seq, 1) // want:errcheck
}

// PrefetchDrop discards the pop error along with the plan — the consumer
// spins on zero values after shutdown.
func PrefetchDrop(r *reorder) {
	r.Pop() // want:errcheck
}

// PlannerPropagates is the reviewable pool-worker shape — a failed delivery
// unwinds the worker: clean.
func PlannerPropagates(r *reorder, seq uint64) error {
	if err := r.Put(seq, 1); err != nil {
		return err
	}
	_, err := r.Pop()
	return err
}

// Exempt exercises the best-effort allowlist: clean.
func Exempt(sb *strings.Builder) {
	fmt.Println("stdout printing is best-effort")
	fmt.Fprintln(os.Stderr, "stderr printing is best-effort")
	sb.WriteString("in-memory sinks never fail")
}

// ManifestDrop mimics a run-manifest writer that drops the encode error: a
// truncated baseline file gates every later run against garbage.
func ManifestDrop(w io.Writer, m interface{}) {
	json.NewEncoder(w).Encode(m) // want:errcheck
}

// ManifestCloseDrop writes the manifest but ignores both the encode and the
// flush-on-close error — the classic silently-short report file.
func ManifestCloseDrop(path string, m interface{}) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	json.NewEncoder(f).Encode(m) // want:errcheck
	f.Close()                    // want:errcheck
}

// ManifestPropagates is the reviewable writer shape — encode and close
// errors both reach the caller: clean.
func ManifestPropagates(path string, m interface{}) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := json.NewEncoder(f).Encode(m); err != nil {
		_ = f.Close() // the encode failure is the error worth reporting
		return err
	}
	return f.Close()
}

// admission mimics the serving admission controller charging batch
// reservations to the device ledger.
type admission struct {
	gpu *device.GPU
}

// BadReserveDrop charges a reservation as a bare statement: the OOM signal —
// the one admission control exists to observe — is silently discarded, and
// the returned allocation leaks unreleasable.
func (a *admission) BadReserveDrop(n int64) {
	a.gpu.Alloc("serve/admission", n) // want:errcheck
}

// BadWarmupDrop fires the calibration warm-up on a goroutine and drops its
// error: a failed warm-up leaves the admission charge at its zero value.
func (a *admission) BadWarmupDrop(warm func() error) {
	go warm() // want:errcheck
}

// ReservePropagates is the reviewable admission shape: a refused reservation
// reports false and the allocation's release travels with the batch.
func (a *admission) ReservePropagates(n int64) (func(), bool) {
	al, err := a.gpu.Alloc("serve/admission", n)
	if err != nil {
		return nil, false
	}
	return al.Free, true
}

// flatParams mimics nn.ParamSet.Flatten: building the contiguous buffer
// fails on a degenerate bucket size or shard count, and the sharded
// optimizer cannot run without it.
type flatParams struct{}

func (f *flatParams) Flatten(bucketBytes int64, shards int) (*flatParams, error) {
	if bucketBytes <= 0 || shards < 1 {
		return nil, io.ErrClosedPipe
	}
	return f, nil
}

// ShardSetupDrop flattens the parameters without checking the error: the
// engine proceeds to reduce-scatter a buffer that was never built.
func ShardSetupDrop(f *flatParams) {
	f.Flatten(1<<20, 4) // want:errcheck
}

// ShardSetupPropagates is the reviewable sharded-engine shape — a failed
// flatten aborts construction before any collective is launched: clean.
func ShardSetupPropagates(f *flatParams) (*flatParams, error) {
	fb, err := f.Flatten(1<<20, 4)
	if err != nil {
		return nil, err
	}
	return fb, nil
}
