// Package fixture seeds errcheck violations for the analyzer's unit test.
package fixture

import (
	"fmt"
	"os"
	"strings"
)

// Drops discards the error of a call that can fail.
func Drops() {
	os.Remove("/tmp/buffalo-vet-fixture") // want:errcheck
}

// GoDrop discards an error inside a go statement.
func GoDrop() {
	go os.Remove("/tmp/buffalo-vet-fixture") // want:errcheck
}

// DeferDrop discards a deferred Close error on a written file.
func DeferDrop(f *os.File) {
	defer f.Close() // want:errcheck
}

// Checked handles the error: clean.
func Checked() error {
	if err := os.Remove("/tmp/buffalo-vet-fixture"); err != nil {
		return err
	}
	return nil
}

// Deliberate discards explicitly, which is reviewable: clean.
func Deliberate() {
	_ = os.Remove("/tmp/buffalo-vet-fixture")
}

// Exempt exercises the best-effort allowlist: clean.
func Exempt(sb *strings.Builder) {
	fmt.Println("stdout printing is best-effort")
	fmt.Fprintln(os.Stderr, "stderr printing is best-effort")
	sb.WriteString("in-memory sinks never fail")
}
