// Package fixture seeds goroutine-leak violations for the leaksafe
// analyzer: goroutines whose bodies reach an unconditional loop with no
// exit and no termination signal, spawned directly or through a spawner
// helper shaped like pipeline.Pipeline.Go.
package fixture

import (
	"context"
	"sync"
)

// spin loops forever with no exit or signal: the canonical leak.
func spin() {
	n := 0
	for {
		n++
	}
}

// callsSpin reaches the spinner through one call hop.
func callsSpin() { spin() }

// BadDirectSpawn spawns the spinner directly.
func BadDirectSpawn() {
	go spin() // want:leaksafe
}

// BadLitSpawn spawns a literal that loops forever.
func BadLitSpawn() {
	go func() { // want:leaksafe
		for {
		}
	}()
}

// BadIndirectSpawn leaks through the helper: only the call graph sees it.
func BadIndirectSpawn() {
	go callsSpin() // want:leaksafe
}

// launch hands its parameter to a goroutine — a spawner, so arguments are
// checked at the call sites that submit them.
func launch(fn func()) {
	go fn()
}

// relaunch forwards its parameter to launch: a spawner by propagation.
func relaunch(fn func()) { launch(fn) }

// wrapLaunch spawns a literal that invokes the parameter, mirroring
// pipeline.Pipeline.Go's shape.
func wrapLaunch(fn func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fn()
	}()
}

func BadSpawnerArg() {
	launch(spin) // want:leaksafe
}

func BadSpawnerLit() {
	launch(func() { // want:leaksafe
		for {
		}
	})
}

func BadTransitiveSpawner() {
	relaunch(spin) // want:leaksafe
}

func BadWrappedSpawner() {
	wrapLaunch(spin) // want:leaksafe
}

// GoodCtxLoop selects on ctx.Done — the canonical stage-body shape.
func GoodCtxLoop(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
	}()
}

// GoodDoneChannel blocks on a done channel each turn; a close releases it.
func GoodDoneChannel(done chan struct{}) {
	go func() {
		for {
			<-done
			return
		}
	}()
}

// GoodBoundedLoop terminates on its own: the loop has a condition.
func GoodBoundedLoop(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = i
		}
	}()
}

// GoodRangeChannel drains a channel until it is closed.
func GoodRangeChannel(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// GoodBreakLoop exits through an unlabeled break belonging to the loop.
func GoodBreakLoop(flag *bool) {
	go func() {
		for {
			if *flag {
				break
			}
		}
	}()
}

// GoodLabeledBreak exits the outer loop from inside a nested select, where
// an unlabeled break would only leave the select.
func GoodLabeledBreak(done chan struct{}) {
	go func() {
	outer:
		for {
			select {
			case <-done:
				break outer
			default:
			}
		}
	}()
}

// GoodSignalViaHelper observes the termination signal through a call: the
// loop body blocks in waitTick, whose receive a close unblocks.
func waitTick(ch chan struct{}) { <-ch }

func GoodSignalViaHelper(ch chan struct{}) {
	go func() {
		for {
			waitTick(ch)
		}
	}()
}

// GoodSpawnerGoodArg submits a terminating body through the spawner.
func GoodSpawnerGoodArg(ch chan int) {
	launch(func() {
		for v := range ch {
			_ = v
		}
	})
}
