// Package fixture seeds allocfree violations for the analyzer's unit test.
// Marked lines must be reported; every other line must stay clean.
package fixture

import (
	"fmt"

	"buffalo/internal/device"
)

// Leak inspects the allocation but never frees or publishes it.
func Leak(g *device.GPU) {
	a, err := g.Alloc("leak", 64) // want:allocfree
	if err != nil {
		return
	}
	fmt.Println(a.Tag)
}

// DiscardResult drops the allocation on the floor.
func DiscardResult(g *device.GPU) {
	g.Alloc("discard", 1) // want:allocfree
}

// BlankResult throws the handle away while keeping the error.
func BlankResult(g *device.GPU) error {
	_, err := g.Alloc("blank", 1) // want:allocfree
	return err
}

// Freed releases via defer: clean.
func Freed(g *device.GPU) error {
	a, err := g.Alloc("ok-freed", 8)
	if err != nil {
		return err
	}
	defer a.Free()
	return nil
}

// ClosureFreed releases inside a deferred closure: clean.
func ClosureFreed(g *device.GPU) error {
	a, err := g.Alloc("ok-closure", 8)
	if err != nil {
		return err
	}
	defer func() { a.Free() }()
	return nil
}

// Returned hands the allocation to the caller: clean.
func Returned(g *device.GPU) (*device.Allocation, error) {
	return g.Alloc("ok-returned", 8)
}

type holder struct {
	a     *device.Allocation
	extra []*device.Allocation
}

// Stored keeps the allocation in a struct field: clean.
func Stored(g *device.GPU, h *holder) error {
	a, err := g.Alloc("ok-stored", 8)
	if err != nil {
		return err
	}
	h.a = a
	return nil
}

// Appended keeps the allocation in an owner slice: clean.
func Appended(g *device.GPU, h *holder) error {
	a, err := g.Alloc("ok-appended", 8)
	if err != nil {
		return err
	}
	h.extra = append(h.extra, a)
	return nil
}
