// Package fixture seeds shapecheck violations for the analyzer's unit test.
package fixture

import "buffalo/internal/tensor"

const hidden = 16

// NegativeDim passes a negative literal column count.
func NegativeDim() *tensor.Matrix {
	return tensor.New(3, -1) // want:shapecheck
}

// ZeroDim passes a zero row count.
func ZeroDim() *tensor.Matrix {
	return tensor.New(0, 4) // want:shapecheck
}

// FoldedNegative folds a negative constant expression.
func FoldedNegative() *tensor.Matrix {
	return tensor.New(hidden-32, 4) // want:shapecheck
}

// Mismatch multiplies 2x3 by 4x5.
func Mismatch() *tensor.Matrix {
	a := tensor.New(2, 3)
	b := tensor.New(4, 5)
	return tensor.MatMul(a, b) // want:shapecheck
}

// MismatchATB violates the transpose contraction rule (a.Rows == b.Rows).
func MismatchATB() {
	a := tensor.New(2, 3)
	b := tensor.New(3, 5)
	out := tensor.New(3, 5)
	tensor.MatMulATBInto(out, a, b, false) // want:shapecheck
}

// MismatchInline checks operands built inline.
func MismatchInline() *tensor.Matrix {
	return tensor.MatMul(tensor.New(2, hidden), tensor.New(hidden+1, 4)) // want:shapecheck
}

// OK is a compatible product: clean.
func OK() *tensor.Matrix {
	a := tensor.New(2, hidden)
	b := tensor.New(hidden, 5)
	return tensor.MatMul(a, b)
}

// Unknown dims stay silent: clean.
func Unknown(n int) *tensor.Matrix {
	a := tensor.New(n, 3)
	b := tensor.New(4, 5)
	return tensor.MatMul(a, b)
}
