// Package fixture exercises the //buffalo:vet-ignore directive.
package fixture

import "buffalo/internal/tensor"

// SuppressedInline carries the directive at the end of the offending line.
func SuppressedInline() *tensor.Matrix {
	return tensor.New(3, -3) //buffalo:vet-ignore shapecheck seeded for the directive test
}

// SuppressedAbove carries the directive alone on the preceding line.
func SuppressedAbove() *tensor.Matrix {
	//buffalo:vet-ignore shapecheck
	return tensor.New(-2, 3)
}

// SuppressedAll uses a bare directive, which silences every analyzer.
func SuppressedAll() *tensor.Matrix {
	return tensor.New(0, 0) //buffalo:vet-ignore
}

// WrongAnalyzer names a different analyzer, so shapecheck still fires —
// and once allocfree also runs, the directive is provably stale.
func WrongAnalyzer() *tensor.Matrix {
	return tensor.New(-1, 1) //buffalo:vet-ignore allocfree -- want:shapecheck and want:vet-ignore
}

// StaleDirective suppresses nothing: the dimensions are fine, so a
// stale-ignores run must flag the directive itself.
func StaleDirective() *tensor.Matrix {
	return tensor.New(2, 3) //buffalo:vet-ignore shapecheck stale by design; want:vet-ignore
}
