// Package fixture exercises the call-graph builder: recursion, mutual
// recursion, interface dispatch, method values, function literals, go
// statements, and spawner-parameter propagation. The builder test walks
// this package's graph by node name; keep names stable.
package fixture

// speaker is dispatched through CHA: a call of Speak on the interface must
// fan out to every implementing type in the module.
type speaker interface{ Speak() string }

type dog struct{}

func (dog) Speak() string { return "woof" }

type cat struct{}

func (cat) Speak() string { return "meow" }

// Talk calls through the interface.
func Talk(s speaker) string { return s.Speak() }

// Fact is directly recursive: the graph must carry a self-edge without the
// reachability fixpoint looping.
func Fact(n int) int {
	if n <= 1 {
		return 1
	}
	return n * Fact(n-1)
}

// Ping and Pong are mutually recursive.
func Ping(n int) {
	if n > 0 {
		Pong(n - 1)
	}
}

func Pong(n int) {
	if n > 0 {
		Ping(n - 1)
	}
}

// MethodValue references a method without calling it: a Ref edge.
func MethodValue(d dog) func() string {
	f := d.Speak
	return f
}

func worker() {}

// SpawnWorker spawns a declared function: a Spawn edge.
func SpawnWorker() {
	go worker()
}

// SpawnLit spawns a literal, which calls worker statically.
func SpawnLit() {
	go func() { worker() }()
}

// InvokeLit invokes a literal immediately: a LitCall edge.
func InvokeLit() int {
	return func() int { return Fact(3) }()
}

// TakeHook receives a callback it may run synchronously; call sites create
// ArgLit edges for literal arguments.
func TakeHook(fn func() int) int { return fn() }

func UseHook() int {
	return TakeHook(func() int { return 7 })
}

// Launch hands its parameter to a goroutine: spawner base case.
func Launch(fn func()) {
	go fn()
}

// Relaunch forwards its parameter to Launch: spawner by propagation.
func Relaunch(fn func()) { Launch(fn) }

// WrapLaunch spawns a literal that invokes the parameter: still a spawner.
func WrapLaunch(fn func()) {
	go func() { fn() }()
}

func UseLaunch() { Launch(worker) }
