// Package fixture declares a hot root with a known allocation census for
// the hotalloc analyzer's tests: the counts asserted there must match the
// sites seeded here, and Cold's allocations must stay invisible.
package fixture

import "fmt"

type block struct {
	data []float64
	next *block
}

// Kernel is the declared hot root: one make and one append site of its
// own, plus whatever it reaches through scale.
//
//buffalo:hot-root fixture-kernel
func Kernel(n int) []float64 {
	buf := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		buf = append(buf, float64(i))
	}
	return scale(buf)
}

// scale is reachable from the root: one new, one composite-literal, and
// one interface-boxing site (len(xs) boxed into fmt.Sprint's ...any).
func scale(xs []float64) []float64 {
	out := new(block)
	out.data = []float64{1, 2, 3}
	_ = fmt.Sprint(len(xs))
	return out.data
}

// Cold is not reachable from any hot root; its allocation must not count.
func Cold() *block {
	return &block{}
}
