// Package fixture seeds locksafe violations for the analyzer's unit test.
package fixture

import (
	"sync"
	"time"

	"buffalo/internal/device"
)

type ledger struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	gpu *device.GPU
}

// BadSleep sleeps inside the critical section.
func (l *ledger) BadSleep() {
	l.mu.Lock()
	time.Sleep(time.Millisecond) // want:locksafe
	l.mu.Unlock()
}

// BadAllocUnderDefer allocates while the deferred unlock keeps the mutex
// held for the whole function.
func (l *ledger) BadAllocUnderDefer() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	a, err := l.gpu.Alloc("locked", 1) // want:locksafe
	if err != nil {
		return err
	}
	a.Free()
	return nil
}

// BadTransfer models a transfer while holding the ledger lock.
func (l *ledger) BadTransfer() {
	l.mu.Lock()
	l.gpu.TransferH2D(1 << 20) // want:locksafe
	l.mu.Unlock()
}

// BadWriteLock flags the RWMutex write lock too.
func (l *ledger) BadWriteLock() {
	l.rw.Lock()
	time.Sleep(time.Microsecond) // want:locksafe
	l.rw.Unlock()
}

// BadAsyncIssue issues an async copy inside the critical section: the issue
// itself books copy-engine time under the ledger lock, so "async" does not
// make it safe to hold a mutex across.
func (l *ledger) BadAsyncIssue() {
	l.mu.Lock()
	l.gpu.TransferH2DAsync(1 << 20) // want:locksafe
	l.mu.Unlock()
}

// BadWaitUnderLock stalls on the copy engine while holding the lock — the
// prefetch-consumer handoff would serialize on it.
func (l *ledger) BadWaitUnderLock(done time.Duration) {
	l.mu.Lock()
	l.gpu.WaitTransfer(done) // want:locksafe
	l.mu.Unlock()
}

// GoodCacheShape is the feature-cache discipline: the mutex guards pure
// in-memory bookkeeping only, and every device call (reservation, copy)
// happens outside the critical section.
func (l *ledger) GoodCacheShape(resident map[int64]bool, key int64) {
	l.gpu.TransferH2DAsync(1 << 10)
	l.mu.Lock()
	resident[key] = true
	l.mu.Unlock()
}

// GoodAfterUnlock does the blocking work outside the critical section.
func (l *ledger) GoodAfterUnlock() {
	l.mu.Lock()
	l.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// GoodClosure defers work to a function literal that runs later, with its
// own analysis scope.
func (l *ledger) GoodClosure() func() {
	l.mu.Lock()
	defer l.mu.Unlock()
	return func() { time.Sleep(time.Millisecond) }
}

// GoodBranch unlocks in both branches before sleeping.
func (l *ledger) GoodBranch(x bool) {
	l.mu.Lock()
	l.mu.Unlock()
	if x {
		time.Sleep(time.Millisecond)
	}
}

// fanout mimics the multi-GPU loader: one shared prefetcher staging onto
// per-replica devices, with a mutex guarding the lane bookkeeping that
// every consumer reads.
type fanout struct {
	mu     sync.Mutex
	staged map[int]int
	gpus   []*device.GPU
}

// BadStageUnderLock issues the device copy inside the bookkeeping critical
// section: every other replica's consumer serializes on one lane's transfer.
func (f *fanout) BadStageUnderLock(dev int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.staged[dev]++
	f.gpus[dev].TransferH2DAsync(1 << 20) // want:locksafe
}

// BadCacheReserveUnderLock reserves per-device cache capacity while holding
// the residency lock shared by all devices.
func (f *fanout) BadCacheReserveUnderLock(dev int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	a, err := f.gpus[dev].Alloc("feature-cache", 1<<20) // want:locksafe
	if err != nil {
		return err
	}
	a.Free()
	return nil
}

// GoodStageShape is the shared-loader discipline: the device copy is issued
// first, and the mutex guards only the in-memory lane counters.
func (f *fanout) GoodStageShape(dev int) {
	f.gpus[dev].TransferH2DAsync(1 << 20)
	f.mu.Lock()
	f.staged[dev]++
	f.mu.Unlock()
}

// reserve is the helper the intraprocedural analyzer cannot see through:
// the ledger allocation is one call away from the critical section.
func (l *ledger) reserve() error {
	a, err := l.gpu.Alloc("helper", 1)
	if err != nil {
		return err
	}
	a.Free()
	return nil
}

// stageViaHelper adds a second hop on the way to the allocation.
func (l *ledger) stageViaHelper() error { return l.reserve() }

// BadHelperAlloc allocates through a helper while the deferred unlock keeps
// the mutex held — invisible to a one-call-at-a-time analyzer, caught by
// the call graph.
func (l *ledger) BadHelperAlloc() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reserve() // want:locksafe-transitive
}

// BadTwoHopAlloc reaches the allocation through two helpers.
func (l *ledger) BadTwoHopAlloc() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stageViaHelper() // want:locksafe-transitive
}

// withHook runs a caller-provided callback synchronously.
func (l *ledger) withHook(fn func()) { fn() }

// BadHookTransfer hands a blocking callback to a helper that may invoke it
// while the lock is held: the literal argument is a synchronous edge.
func (l *ledger) BadHookTransfer() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.withHook(func() { l.gpu.TransferH2D(1 << 10) }) // want:locksafe-transitive
}

// GoodSpawnUnderLock hands the blocking work to another goroutine: the
// critical section itself never blocks (the spawned body is leaksafe's
// jurisdiction, not locksafe's).
func (l *ledger) GoodSpawnUnderLock(done chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	go func() {
		l.gpu.TransferH2D(1 << 10)
		close(done)
	}()
}

// bump is pure bookkeeping; calling it under the lock is fine.
func (l *ledger) bump(resident map[int64]bool, key int64) { resident[key] = true }

// GoodHelperBookkeeping calls a non-blocking helper under the lock.
func (l *ledger) GoodHelperBookkeeping(resident map[int64]bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.bump(resident, 7)
}

// stageBackend abstracts a staging target; the method name is unexported,
// so only this fixture's types can satisfy it.
type stageBackend interface {
	stageBlock(n int64)
}

type devBackend struct{ gpu *device.GPU }

func (d *devBackend) stageBlock(n int64) { d.gpu.TransferH2D(n) }

type memBackend struct{ total int64 }

func (m *memBackend) stageBlock(n int64) { m.total += n }

// BadInterfaceStage dispatches through the interface while holding the
// bookkeeping lock: class-hierarchy analysis considers every implementing
// type, and devBackend blocks.
func (f *fanout) BadInterfaceStage(t stageBackend) {
	f.mu.Lock()
	defer f.mu.Unlock()
	t.stageBlock(1 << 20) // want:locksafe-transitive
}

// cell carries a mutex reached through computed indices — the exprKey
// regression: index expressions with arithmetic used to collapse to one
// "?" key, so two distinct mutexes looked identical.
type cell struct {
	mu sync.Mutex
}

// BadDistinctUnknown locks one computed mutex and unlocks a different one:
// the first stays held across the sleep. Before the exprKey fix both
// expressions keyed as "cs[?].mu" and the unlock wrongly released the lock.
func BadDistinctUnknown(cs []cell, i, j int) {
	cs[i+1].mu.Lock()
	cs[j-1].mu.Unlock()
	time.Sleep(time.Millisecond) // want:locksafe
}

// GoodMatchedUnknown locks and unlocks the same computed expression: the
// structural keys must still pair up, releasing the lock before the sleep.
func GoodMatchedUnknown(cs []cell, i int) {
	cs[i+1].mu.Lock()
	cs[i+1].mu.Unlock()
	time.Sleep(time.Millisecond)
}

// reducer mimics the bucketed gradient reduce: a cluster comm engine with a
// mutex guarding bucket bookkeeping shared with the planner pool.
type reducer struct {
	mu      sync.Mutex
	cluster *device.Cluster
	buckets map[int]int64
}

// BadLaunchUnderLock launches a bucket's ring reduce inside the critical
// section: the launch books interconnect time on the comm-engine clock, and
// every other goroutine touching the bucket table serializes on it.
func (r *reducer) BadLaunchUnderLock(j int, ready time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cluster.AllReduceAsync(r.buckets[j], ready) // want:locksafe
}

// BadWaitReduceUnderLock stalls on the comm engine while holding the lock —
// the optimizer-step handoff would serialize behind the slowest bucket.
func (r *reducer) BadWaitReduceUnderLock(done time.Duration) {
	r.mu.Lock()
	r.cluster.WaitReduce(done) // want:locksafe
	r.mu.Unlock()
}

// BadSyncReduceUnderDefer runs the monolithic synchronous collective while
// the deferred unlock keeps the mutex held.
func (r *reducer) BadSyncReduceUnderDefer() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cluster.AllReduce(1 << 20) // want:locksafe
}

// GoodReduceShape is the engine's discipline: read the bucket size under the
// lock, launch and wait with no locks held.
func (r *reducer) GoodReduceShape(j int, ready time.Duration) time.Duration {
	r.mu.Lock()
	size := r.buckets[j]
	r.mu.Unlock()
	r.cluster.AllReduceAsync(size, ready)
	return r.cluster.WaitReduce(ready)
}

// BadReduceScatterUnderLock launches the sharded collective inside the
// critical section — the ZeRO-1 combine's per-bucket reduce-scatter books
// interconnect time exactly like an all-reduce launch.
func (r *reducer) BadReduceScatterUnderLock(j int, ready time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cluster.ReduceScatterAsync(r.buckets[j], ready) // want:locksafe
}

// BadAllGatherUnderLock books the value all-gather that closes a ZeRO-1
// iteration while holding the shard-bookkeeping lock.
func (r *reducer) BadAllGatherUnderLock(size int64, ready time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cluster.AllGatherAsync(size, ready) // want:locksafe
}

// GoodShardedCombineShape is the sharded combine's discipline, mirroring
// GoodReduceShape: snapshot shard state under the lock, then launch the
// reduce-scatter, wait, and launch the closing all-gather lock-free.
func (r *reducer) GoodShardedCombineShape(j int, valueBytes int64, ready time.Duration) time.Duration {
	r.mu.Lock()
	size := r.buckets[j]
	r.mu.Unlock()
	r.cluster.ReduceScatterAsync(size, ready)
	stall := r.cluster.WaitReduce(ready)
	r.cluster.AllGatherAsync(valueBytes, ready+stall)
	return stall
}

// tap mimics the obs streaming tap: a bounded channel consumers drain, with
// a mutex guarding the producer-side bookkeeping. Channel operations park
// the goroutine just like a transfer does, so holding the lock across one
// stalls every other producer.
type tap struct {
	mu      sync.Mutex
	ch      chan int
	dropped int
}

// BadSendUnderLock parks every producer on a slow consumer while the
// bookkeeping lock is held.
func (t *tap) BadSendUnderLock(v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ch <- v // want:locksafe
}

// BadRecvUnderLock drains the stream inside the critical section.
func (t *tap) BadRecvUnderLock() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return <-t.ch // want:locksafe
}

// BadBlockingSelectUnderLock parks on two channels with the lock held — no
// default clause means this select is a wait, not a poll.
func (t *tap) BadBlockingSelectUnderLock(stop chan struct{}) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	select { // want:locksafe
	case v := <-t.ch:
		return v
	case <-stop:
		return 0
	}
}

// BadRangeUnderLock holds the lock across an entire stream drain: the
// producer side cannot make progress until the channel closes.
func (t *tap) BadRangeUnderLock() (n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for range t.ch { // want:locksafe
		n++
	}
	return n
}

// GoodOfferShape is the tap's offer discipline: a select with a default
// clause never parks, so counting the drop under the lock is fine.
func (t *tap) GoodOfferShape(v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case t.ch <- v:
	default:
		t.dropped++
	}
}

// publish is the helper hop the intraprocedural analyzer cannot see
// through: a bare channel send one call away.
func (t *tap) publish(v int) { t.ch <- v }

// BadPublishUnderLock reaches the send through a helper — the call graph's
// jurisdiction.
func (t *tap) BadPublishUnderLock(v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.publish(v) // want:locksafe-transitive
}

// batcher mimics the serving front-end: a coalescing goroutine assembling
// requests from an intake channel into batches, with a mutex guarding the
// batch bookkeeping. The discipline under test: channel waits (intake
// receive, executor-queue send, the MaxWait timer select) must happen
// outside the critical section — a send to the bounded executor queue under
// the lock would stall every concurrent Infer on a full queue.
type batcher struct {
	mu    sync.Mutex
	batch []int
	reqs  chan int
	execQ chan []int
}

// BadSendUnderLock hands a sealed batch to the bounded executor queue while
// still holding the batch lock: when the queue is full, every producer
// blocks on this mutex for as long as the executor is busy.
func (b *batcher) BadSendUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	sealed := b.batch
	b.batch = nil
	b.execQ <- sealed // want:locksafe
}

// BadIntakeRecvUnderLock pulls the next request off the intake channel
// inside the critical section — an idle server parks here holding the lock.
func (b *batcher) BadIntakeRecvUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.batch = append(b.batch, <-b.reqs) // want:locksafe
}

// BadTimerSelectUnderLock runs the MaxWait coalescing select — intake
// arrival vs window expiry — with the lock held: the select blocks up to
// the full window.
func (b *batcher) BadTimerSelectUnderLock(timer *time.Timer) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want:locksafe
	case v := <-b.reqs:
		b.batch = append(b.batch, v)
	case <-timer.C:
		b.batch = nil
	}
}

// GoodShedPoll offers a sealed batch with a non-blocking send — a select
// with a default never parks, so holding the bookkeeping lock across it is
// fine (this is the shed-on-full admission shape).
func (b *batcher) GoodShedPoll(sealed []int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case b.execQ <- sealed:
		return true
	default:
		return false
	}
}

// GoodSealOutsideLock is the batcher discipline: the lock covers only the
// swap of the assembling batch; the blocking handoff happens after unlock.
func (b *batcher) GoodSealOutsideLock() {
	b.mu.Lock()
	sealed := b.batch
	b.batch = nil
	b.mu.Unlock()
	b.execQ <- sealed
}
