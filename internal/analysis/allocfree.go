package analysis

import (
	"go/ast"
	"go/types"
)

// AllocFree flags device ledger allocations that can never be released: a
// *device.Allocation returned by GPU.Alloc that is neither Freed (directly
// or via defer), returned to the caller, nor stored somewhere that outlives
// the function (struct field, slice, map, channel, argument). A leaked
// allocation keeps its bytes charged to the simulated GPU forever, which
// inflates live/peak counters and silently corrupts every OOM boundary and
// peak-memory curve the reproduction reports.
//
// The check is per-call-site and flow-insensitive: any Free or escape of
// the result anywhere in the enclosing function counts. That is weaker
// than "freed on all paths" but catches the common leaks (result discarded,
// or only inspected) without false-positive noise.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc:  "device.GPU.Alloc results must be freed, returned, or stored",
	Run:  runAllocFree,
}

func runAllocFree(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAllocsInFunc(p, fd.Body)
		}
	}
}

// checkAllocsInFunc inspects one function body. Nested function literals
// are scanned as part of the same body: a closure that frees or publishes
// the allocation discharges the obligation (deferred cleanup closures are
// the idiomatic pattern).
func checkAllocsInFunc(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			// Bare `g.Alloc(...)` statement: result dropped on the floor.
			if call, ok := s.X.(*ast.CallExpr); ok && isAllocCall(p, call) {
				p.Reportf(call.Pos(), "result of %s is discarded: the reservation can never be freed", calleeLabel(p, call))
			}
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 {
				return true
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || !isAllocCall(p, call) {
				return true
			}
			target := s.Lhs[0]
			id, ok := ast.Unparen(target).(*ast.Ident)
			if !ok {
				// Stored into a field, index, or dereference: escapes.
				return true
			}
			if id.Name == "_" {
				p.Reportf(call.Pos(), "result of %s is assigned to _: the reservation can never be freed", calleeLabel(p, call))
				return true
			}
			obj := p.Info.ObjectOf(id)
			if obj == nil {
				return true
			}
			if _, isVar := obj.(*types.Var); !isVar {
				return true
			}
			if !allocReleasedOrEscapes(p, body, obj, id) {
				p.Reportf(call.Pos(), "allocation %q may leak: result is neither freed, returned, nor stored", allocTag(p, call))
			}
		}
		return true
	})
}

// isAllocCall reports whether call statically invokes device.GPU.Alloc.
func isAllocCall(p *Pass, call *ast.CallExpr) bool {
	return isDeviceMethod(staticCallee(p.Info, call), "GPU", "Alloc")
}

// calleeLabel renders the callee for a diagnostic, e.g. "GPU.Alloc".
func calleeLabel(p *Pass, call *ast.CallExpr) string {
	fn := staticCallee(p.Info, call)
	if fn == nil {
		return "call"
	}
	if recv := recvTypeName(fn); recv != "" {
		return recv + "." + fn.Name()
	}
	return fn.Name()
}

// allocTag extracts the literal tag argument of an Alloc call when visible.
func allocTag(p *Pass, call *ast.CallExpr) string {
	if len(call.Args) > 0 {
		if tv, ok := p.Info.Types[call.Args[0]]; ok && tv.Value != nil {
			s := tv.Value.String()
			if len(s) >= 2 && s[0] == '"' {
				return s[1 : len(s)-1]
			}
			return s
		}
	}
	return "?"
}

// allocReleasedOrEscapes scans body for any use of obj that releases the
// allocation or lets it outlive the function:
//
//   - a call to obj.Free() (directly, deferred, or inside a closure)
//   - obj returned, sent on a channel, or used as a bare call argument
//   - obj on the right-hand side of an assignment (stored elsewhere)
//   - obj's address taken, or obj placed in a composite literal
//
// Selector uses (obj.Tag, obj.Bytes) inspect the allocation without
// releasing it and do not count.
func allocReleasedOrEscapes(p *Pass, body *ast.BlockStmt, obj types.Object, def *ast.Ident) bool {
	parents := buildParents(body)
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		id, isIdent := n.(*ast.Ident)
		if !isIdent || id == def || p.Info.Uses[id] != obj {
			return true
		}
		if useReleasesOrEscapes(p, parents, id) {
			ok = true
			return false
		}
		return true
	})
	return ok
}

// useReleasesOrEscapes classifies one use of the tracked allocation var.
func useReleasesOrEscapes(p *Pass, parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	parent := parents[id]
	switch pn := parent.(type) {
	case *ast.SelectorExpr:
		if pn.X != id {
			return false
		}
		// obj.Free() releases; any other selector is a read.
		if pn.Sel.Name != "Free" {
			return false
		}
		call, ok := parents[pn].(*ast.CallExpr)
		return ok && call.Fun == pn
	case *ast.AssignStmt:
		// On the LHS: reassignment, not a use that saves this allocation.
		for _, l := range pn.Lhs {
			if l == id {
				return false
			}
		}
		return true // RHS of an assignment: stored somewhere
	case *ast.CallExpr:
		if pn.Fun == id {
			return false // calling the var (impossible for *Allocation)
		}
		return true // passed as an argument
	case *ast.ReturnStmt, *ast.SendStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.IndexExpr:
		return true
	case *ast.UnaryExpr:
		return pn.Op.String() == "&"
	case *ast.RangeStmt:
		return false
	default:
		return false
	}
}

// buildParents maps every node in body to its parent.
func buildParents(body *ast.BlockStmt) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
