package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"time"

	"buffalo/internal/analysis/callgraph"
)

// runState is the machinery one RunOpts invocation shares between
// interprocedural analyzers: the whole-module call graph and the memoized
// reachability attributes computed over it. Everything is built lazily so
// runs restricted to intraprocedural analyzers pay nothing.
type runState struct {
	prog *Program
	pkgs []*Package // selected packages (may include fixtures outside prog)
	opts *RunOptions
	fset *token.FileSet

	graph *callgraph.Graph

	// blockLocal maps nodes whose own body performs a blocking operation to
	// the first such call, for locksafe chain terminals.
	blockLocal map[*callgraph.Node]blockSite
	blocking   *callgraph.Reach

	// signal marks nodes that reach a termination signal (select, channel
	// receive/range); forever marks nodes that reach an inescapable loop.
	signal  *callgraph.Reach
	forever *callgraph.Reach
}

// blockSite is one directly blocking call inside a node's own body.
type blockSite struct {
	reason string
	pos    token.Pos
}

func newRunState(prog *Program, pkgs []*Package, opts *RunOptions) *runState {
	return &runState{prog: prog, pkgs: pkgs, opts: opts, fset: prog.Fset}
}

// Graph builds (once) the call graph over the union of the module's
// packages and any extra selected packages (testdata fixtures), so fixture
// code calling into module packages resolves cross-package edges.
func (s *runState) Graph() *callgraph.Graph {
	if s.graph != nil {
		return s.graph
	}
	start := time.Now()
	inModule := make(map[*Package]bool, len(s.prog.Packages))
	var cgPkgs []*callgraph.Package
	add := func(pkg *Package) {
		cgPkgs = append(cgPkgs, &callgraph.Package{
			Path:  pkg.ImportPath,
			Files: pkg.Files,
			Info:  pkg.Info,
		})
	}
	for _, pkg := range s.prog.Packages {
		inModule[pkg] = true
		add(pkg)
	}
	for _, pkg := range s.pkgs {
		if !inModule[pkg] {
			add(pkg)
		}
	}
	s.graph = callgraph.Build(cgPkgs)
	if s.opts.Timing != nil {
		s.opts.Timing["callgraph"] += time.Since(start)
	}
	return s.graph
}

// inspectOwnBody walks a node's body without descending into nested
// function literals — those are their own graph nodes with their own
// attributes.
func inspectOwnBody(n *callgraph.Node, visit func(ast.Node) bool) {
	if n.Body == nil {
		return
	}
	ast.Inspect(n.Body, func(node ast.Node) bool {
		if _, isLit := node.(*ast.FuncLit); isLit {
			return false
		}
		return visit(node)
	})
}

// Blocking returns the memoized "reaches a blocking operation" attribute,
// following synchronous edges only: static and dynamic calls, invoked
// literals, and literal arguments (callbacks the callee may run inline).
// Spawn edges are excluded — work on another goroutine does not block the
// caller's critical section — as are bare references, which only run later.
func (s *runState) Blocking() *callgraph.Reach {
	if s.blocking != nil {
		return s.blocking
	}
	g := s.Graph()
	s.blockLocal = make(map[*callgraph.Node]blockSite)
	for _, n := range g.Nodes {
		n := n
		// Comm statements of a polling select (one with a default clause)
		// never park the goroutine; Inspect visits a select before its
		// clauses, so the skip set is always populated in time.
		skipComm := make(map[ast.Node]bool)
		inspectOwnBody(n, func(node ast.Node) bool {
			if _, seen := s.blockLocal[n]; seen {
				return false
			}
			if skipComm[node] {
				return false
			}
			switch v := node.(type) {
			case *ast.CallExpr:
				if why := blockingCallReason(n.Pkg.Info, v); why != "" {
					s.blockLocal[n] = blockSite{reason: why, pos: v.Pos()}
					return false
				}
			case *ast.SelectStmt:
				if !selectHasDefault(v) {
					s.blockLocal[n] = blockSite{reason: "blocking select (no default)", pos: v.Select}
					return false
				}
				for _, c := range v.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						skipComm[cc.Comm] = true
					}
				}
			case *ast.SendStmt:
				s.blockLocal[n] = blockSite{reason: "channel send", pos: v.Arrow}
				return false
			case *ast.UnaryExpr:
				if v.Op == token.ARROW {
					s.blockLocal[n] = blockSite{reason: "channel receive", pos: v.OpPos}
					return false
				}
			case *ast.RangeStmt:
				if t := n.Pkg.Info.TypeOf(v.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						s.blockLocal[n] = blockSite{reason: "range over channel", pos: v.For}
						return false
					}
				}
			}
			return true
		})
	}
	s.blocking = callgraph.NewReach(g,
		func(n *callgraph.Node) bool { _, ok := s.blockLocal[n]; return ok },
		syncEdge)
	return s.blocking
}

// syncEdge admits edges that transfer control synchronously on the calling
// goroutine.
func syncEdge(e *callgraph.Edge) bool {
	switch e.Kind {
	case callgraph.Static, callgraph.Dynamic, callgraph.LitCall, callgraph.ArgLit:
		return true
	}
	return false
}

// BlockReason returns the first directly blocking call in n's own body.
func (s *runState) BlockReason(n *callgraph.Node) (blockSite, bool) {
	s.Blocking()
	site, ok := s.blockLocal[n]
	return site, ok
}

// BlockChain renders the call path from (but excluding) the node behind
// start down to the blocking operation, one entry per hop, ending with the
// classified reason.
func (s *runState) BlockChain(start *callgraph.Node) []string {
	r := s.Blocking()
	var chain []string
	node := start
	if site, ok := s.blockLocal[start]; ok {
		chain = append(chain, s.describeNode(start))
		chain = append(chain, site.reason+" at "+s.shortPos(site.pos))
		return chain
	}
	path := r.Path(start)
	if path == nil {
		return nil
	}
	chain = append(chain, s.describeNode(start))
	for _, e := range path {
		chain = append(chain, s.describeNode(e.Callee))
		node = e.Callee
	}
	if site, ok := s.blockLocal[node]; ok {
		chain = append(chain, site.reason+" at "+s.shortPos(site.pos))
	}
	return chain
}

// Signal returns the memoized "reaches a termination signal" attribute. A
// node signals locally when its own body contains a select statement, a
// channel receive, or a range over a channel — the shapes shutdown takes in
// this repo (ctx.Done selects, closed done channels, bounded work queues).
func (s *runState) Signal() *callgraph.Reach {
	if s.signal != nil {
		return s.signal
	}
	g := s.Graph()
	s.signal = callgraph.NewReach(g, func(n *callgraph.Node) bool {
		return hasLocalSignal(n)
	}, syncEdge)
	return s.signal
}

func hasLocalSignal(n *callgraph.Node) bool {
	found := false
	inspectOwnBody(n, func(node ast.Node) bool {
		if found {
			return false
		}
		switch v := node.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := n.Pkg.Info.TypeOf(v.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// Forever returns the memoized "reaches an inescapable loop" attribute: a
// node is locally forever when its own body contains a condition-less for
// loop with no exit (return, matching break, goto, panic) and no
// termination signal — directly or through a synchronous call that reaches
// one.
func (s *runState) Forever() *callgraph.Reach {
	if s.forever != nil {
		return s.forever
	}
	g := s.Graph()
	signal := s.Signal()
	s.forever = callgraph.NewReach(g, func(n *callgraph.Node) bool {
		return hasInescapableLoop(n, signal, g)
	}, syncEdge)
	return s.forever
}

// ForeverChain renders the path from start to the node holding the
// inescapable loop.
func (s *runState) ForeverChain(start *callgraph.Node) []string {
	r := s.Forever()
	if !r.Reaches(start) {
		return nil
	}
	chain := []string{s.describeNode(start)}
	for _, e := range r.Path(start) {
		chain = append(chain, s.describeNode(e.Callee))
	}
	chain[len(chain)-1] += " (unconditional loop, no exit or termination signal)"
	return chain
}

// hasInescapableLoop scans n's own body for `for { ... }` loops that can
// neither exit nor observe a termination signal.
func hasInescapableLoop(n *callgraph.Node, signal *callgraph.Reach, g *callgraph.Graph) bool {
	found := false
	inspectOwnBody(n, func(node ast.Node) bool {
		if found {
			return false
		}
		loop, ok := node.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if !loopEscapes(n, loop, signal, g) {
			found = true
			return false
		}
		return true
	})
	return found
}

// loopEscapes reports whether a condition-less for loop has any way out:
// a return, a break that targets it, a goto, a panic, or a termination
// signal (select / receive / channel range / a synchronous call reaching
// one) that makes blocking forever impossible.
func loopEscapes(n *callgraph.Node, loop *ast.ForStmt, signal *callgraph.Reach, g *callgraph.Graph) bool {
	escapes := false
	var label string
	// A labeled loop can be exited by `break label` from arbitrary nesting.
	// The loop's label, if any, is on the enclosing LabeledStmt; find it by
	// scanning the node body once.
	inspectOwnBody(n, func(node ast.Node) bool {
		if ls, ok := node.(*ast.LabeledStmt); ok && ls.Stmt == loop {
			label = ls.Label.Name
			return false
		}
		return true
	})
	// depth counts break-consuming constructs (for/range/switch/select)
	// between the loop body and the statement under inspection, so an
	// unlabeled break inside a nested select belongs to the select, not to
	// the loop. Statements inside nested function literals never affect the
	// loop.
	var walk func(node ast.Node, depth int)
	walk = func(node ast.Node, depth int) {
		if node == nil || escapes {
			return
		}
		switch v := node.(type) {
		case *ast.FuncLit:
			return
		case *ast.ReturnStmt:
			escapes = true
		case *ast.BranchStmt:
			switch v.Tok {
			case token.GOTO:
				escapes = true // approximation: assume the target leaves the loop
			case token.BREAK:
				if v.Label != nil {
					if label != "" && v.Label.Name == label {
						escapes = true
					}
				} else if depth == 0 {
					escapes = true
				}
			}
		case *ast.SelectStmt:
			// A select is a termination signal by itself (every stage loop
			// here selects on ctx.Done); its clauses still get scanned for
			// returns with break-depth bumped.
			escapes = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				escapes = true // channel receive: unblocked by close/send
			}
			walk(v.X, depth)
		case *ast.RangeStmt:
			if t := n.Pkg.Info.TypeOf(v.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					escapes = true
					return
				}
			}
			walk(v.X, depth)
			walk(v.Body, depth+1)
		case *ast.ForStmt:
			walk(v.Init, depth)
			walk(v.Cond, depth)
			walk(v.Post, depth)
			walk(v.Body, depth+1)
		case *ast.SwitchStmt:
			walk(v.Init, depth)
			walk(v.Tag, depth)
			walk(v.Body, depth+1)
		case *ast.TypeSwitchStmt:
			walk(v.Init, depth)
			walk(v.Assign, depth)
			walk(v.Body, depth+1)
		case *ast.CallExpr:
			if isPanicCall(n.Pkg.Info, v) {
				escapes = true
				return
			}
			for _, e := range g.EdgesAt(v) {
				if syncEdge(e) && signal.Reaches(e.Callee) {
					escapes = true
					return
				}
			}
			for _, arg := range v.Args {
				walk(arg, depth)
			}
			walk(v.Fun, depth)
		default:
			walkChildren(node, func(child ast.Node) { walk(child, depth) })
		}
	}
	walk(loop.Body, 0)
	return escapes
}

// walkChildren visits node's direct children once each.
func walkChildren(node ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(node, func(child ast.Node) bool {
		if first {
			first = false
			return true
		}
		if child != nil {
			visit(child)
		}
		return false
	})
}

// isPanicCall recognizes the builtin panic.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// describeNode renders a node for a diagnostic chain: its stable name plus
// the short position of its body.
func (s *runState) describeNode(n *callgraph.Node) string {
	return fmt.Sprintf("%s (%s)", n.Name, s.shortPos(n.Body.Pos()))
}

// shortPos renders pos as base-filename:line.
func (s *runState) shortPos(pos token.Pos) string {
	p := s.fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
