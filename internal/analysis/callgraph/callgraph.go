// Package callgraph builds a whole-module call graph over the typed ASTs
// the analysis loader produces, so buffalo-vet's analyzers can reason
// interprocedurally: a ledger allocation reached through two helpers is as
// hazardous under a mutex as a direct one, an allocation site is hot if any
// hot root reaches it, and a spawned goroutine leaks no matter how many
// layers of closures sit between the `go` statement and the spin loop.
//
// The graph is CHA-style (class-hierarchy analysis) and deliberately simple:
//
//   - Direct calls of module functions and methods become Static edges.
//   - Calls through an interface method become one Dynamic edge per module
//     type implementing that interface — sound for module code, silent about
//     stdlib implementations (stdlib bodies are not loaded, so stdlib calls
//     are leaves classified by the consumer).
//   - Function literals are first-class nodes. An immediately invoked
//     literal gets a LitCall edge, a literal passed as a call argument gets
//     an ArgLit edge (possibly-synchronous callback), any other reference
//     (assigned, returned, stored) a Ref edge. References to declared
//     functions by value (method values, function arguments) also get Ref
//     edges.
//   - `go` statements become Spawn edges, tagged so consumers can choose
//     whether concurrency crosses their invariant (it does for goroutine
//     leaks, it does not for blocking-under-lock).
//
// Each consumer picks the edge kinds that model its invariant via a Reach,
// a memoized transitive attribute computed cycle-safely by fixpoint, with
// shortest-path extraction for diagnostics that print the offending chain.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Package is one type-checked package the graph is built from. It mirrors
// the analysis loader's package shape without importing it (the analysis
// package imports this one).
type Package struct {
	Path  string
	Files []*ast.File
	Info  *types.Info
}

// EdgeKind classifies how control may flow from caller to callee.
type EdgeKind uint8

const (
	// Static is a direct call of a declared module function or method.
	Static EdgeKind = iota
	// Dynamic is an interface-dispatch edge to one possible implementation.
	Dynamic
	// LitCall is the immediate invocation of a function literal.
	LitCall
	// ArgLit marks a function literal passed as a call argument: the callee
	// may invoke it synchronously (hooks, callbacks) or never.
	ArgLit
	// Ref marks a function value referenced without being called here:
	// assigned, returned, stored, or a declared function passed by value.
	Ref
	// Spawn is a go-statement edge: the callee runs on a new goroutine.
	Spawn
)

func (k EdgeKind) String() string {
	switch k {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case LitCall:
		return "litcall"
	case ArgLit:
		return "arglit"
	case Ref:
		return "ref"
	case Spawn:
		return "spawn"
	}
	return "?"
}

// Edge is one possible control transfer.
type Edge struct {
	Kind   EdgeKind
	Caller *Node
	Callee *Node
	// Site is the enclosing *ast.CallExpr (calls and spawned calls alike) or
	// nil for Ref edges outside calls.
	Site *ast.CallExpr
	Pos  token.Pos
}

// Node is one function body: a declared function or method (Func set) or a
// function literal (Lit set).
type Node struct {
	Func *types.Func
	Lit  *ast.FuncLit
	Decl *ast.FuncDecl // nil for literals
	Body *ast.BlockStmt
	Pkg  *Package
	// Name is a stable human-readable identity: "path.Fn",
	// "path.(*T).Method", literals as "<owner>$<n>" in source order.
	Name string
	// Encl is the directly enclosing node for literals, nil for declared
	// functions.
	Encl *Node
	Out  []*Edge
	In   []*Edge
	// Params holds the declared parameter objects in signature order.
	Params []types.Object
	// SpawnerParams[i] is true when calling this function hands parameter i
	// to a goroutine (directly via `go p()` or inside a literal the function
	// spawns), transitively through other spawners.
	SpawnerParams []bool
}

// Graph is the whole-module call graph.
type Graph struct {
	// Nodes lists every function body in deterministic (package, position)
	// order.
	Nodes []*Node

	byFunc map[*types.Func]*Node
	byLit  map[*ast.FuncLit]*Node
	bySite map[*ast.CallExpr][]*Edge

	named     []*types.Named
	implCache map[implKey][]*Node
}

type implKey struct {
	iface *types.Interface
	name  string
}

// NodeOf returns the node of a declared function (resolved through Origin
// for generic instantiations), or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.byFunc[fn.Origin()]
}

// NodeOfLit returns the node of a function literal, or nil.
func (g *Graph) NodeOfLit(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// EdgesAt returns every edge resolved at one call expression (including the
// call of a go statement), in deterministic order.
func (g *Graph) EdgesAt(call *ast.CallExpr) []*Edge { return g.bySite[call] }

// Build constructs the graph over the given packages. Packages must already
// be type-checked; edges are only created toward functions whose bodies are
// in the given set (stdlib and unresolved indirect calls are leaves).
func Build(pkgs []*Package) *Graph {
	g := &Graph{
		byFunc:    make(map[*types.Func]*Node),
		byLit:     make(map[*ast.FuncLit]*Node),
		bySite:    make(map[*ast.CallExpr][]*Edge),
		implCache: make(map[implKey][]*Node),
	}
	b := &builder{g: g, names: make(map[string]int)}
	// Pass 1: declared functions and the named-type universe for CHA.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := &Node{
					Func: fn, Decl: fd, Body: fd.Body, Pkg: pkg,
					Name:   b.unique(declName(pkg.Path, fn)),
					Params: paramObjs(pkg.Info, fd.Type),
				}
				g.Nodes = append(g.Nodes, n)
				g.byFunc[fn.Origin()] = n
			}
		}
		g.collectNamed(pkg)
	}
	// Pass 2: walk bodies, creating literal nodes and every edge.
	decls := append([]*Node(nil), g.Nodes...)
	for _, n := range decls {
		b.pkg = n.Pkg
		b.walk(n, n.Body)
	}
	g.computeSpawners()
	return g
}

// collectNamed gathers the package's named non-interface types as the CHA
// implementation universe. Generic types are skipped: they cannot be tested
// with Implements without instantiation.
func (g *Graph) collectNamed(pkg *Package) {
	for _, obj := range pkg.Info.Defs {
		tn, ok := obj.(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || named.TypeParams().Len() > 0 {
			continue
		}
		if types.IsInterface(named) {
			continue
		}
		g.named = append(g.named, named)
	}
	sort.Slice(g.named, func(i, j int) bool {
		return g.named[i].Obj().Id() < g.named[j].Obj().Id()
	})
}

// implementers resolves an interface method to every module method that can
// satisfy it, cached per (interface, method name).
func (g *Graph) implementers(ifaceType types.Type, name string, pkg *types.Package) []*Node {
	iface, ok := ifaceType.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	key := implKey{iface: iface, name: name}
	if nodes, ok := g.implCache[key]; ok {
		return nodes
	}
	var nodes []*Node
	seen := make(map[*Node]bool)
	for _, named := range g.named {
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, pkg, name)
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if n := g.NodeOf(m); n != nil && !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	g.implCache[key] = nodes
	return nodes
}

type builder struct {
	g     *Graph
	pkg   *Package
	names map[string]int
}

// unique disambiguates node names (multiple init functions, redeclarations
// across build-tag variants) with a #n suffix.
func (b *builder) unique(name string) string {
	b.names[name]++
	if n := b.names[name]; n > 1 {
		return fmt.Sprintf("%s#%d", name, n)
	}
	return name
}

// declName renders the stable identity of a declared function.
func declName(path string, fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = "*"
		}
		name := "?"
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name()
		}
		return fmt.Sprintf("%s.(%s%s).%s", path, ptr, name, fn.Name())
	}
	return path + "." + fn.Name()
}

// paramObjs resolves the declared parameter objects of a function type.
func paramObjs(info *types.Info, ft *ast.FuncType) []types.Object {
	var objs []types.Object
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		if len(field.Names) == 0 {
			objs = append(objs, nil) // unnamed parameter still occupies a slot
			continue
		}
		for _, name := range field.Names {
			objs = append(objs, info.Defs[name])
		}
	}
	return objs
}

// litNode creates (or returns) the node of a function literal owned by encl.
func (b *builder) litNode(encl *Node, lit *ast.FuncLit) *Node {
	if n := b.g.byLit[lit]; n != nil {
		return n
	}
	n := &Node{
		Lit: lit, Body: lit.Body, Pkg: b.pkg, Encl: encl,
		Name:   b.unique(encl.Name + "$"),
		Params: paramObjs(b.pkg.Info, lit.Type),
	}
	b.g.Nodes = append(b.g.Nodes, n)
	b.g.byLit[lit] = n
	return n
}

func (b *builder) edge(caller, callee *Node, kind EdgeKind, site *ast.CallExpr, pos token.Pos) {
	e := &Edge{Kind: kind, Caller: caller, Callee: callee, Site: site, Pos: pos}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
	if site != nil {
		b.g.bySite[site] = append(b.g.bySite[site], e)
	}
}

// walk attributes every call, spawn, and function-value reference under root
// to owner, descending into function literals under their own nodes.
func (b *builder) walk(owner *Node, root ast.Node) {
	if root == nil {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			b.call(owner, v.Call, true)
			return false
		case *ast.CallExpr:
			b.call(owner, v, false)
			return false
		case *ast.FuncLit:
			lit := b.litNode(owner, v)
			b.edge(owner, lit, Ref, nil, v.Pos())
			b.walk(lit, v.Body)
			return false
		case *ast.Ident:
			b.funcRef(owner, v)
		}
		return true
	})
}

// funcRef records a Ref edge for a declared function mentioned by value
// (method value, function argument, assignment).
func (b *builder) funcRef(owner *Node, id *ast.Ident) {
	fn, ok := b.pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	if callee := b.g.NodeOf(fn); callee != nil {
		b.edge(owner, callee, Ref, nil, id.Pos())
	}
}

// call resolves one call expression (spawned when part of a go statement):
// target edges for the callee, ArgLit edges for literal arguments, and a
// recursive walk of every operand.
func (b *builder) call(owner *Node, call *ast.CallExpr, spawn bool) {
	kind := Static
	if spawn {
		kind = Spawn
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		lit := b.litNode(owner, fun)
		if spawn {
			b.edge(owner, lit, Spawn, call, call.Pos())
		} else {
			b.edge(owner, lit, LitCall, call, call.Pos())
		}
		b.walk(lit, fun.Body)
	case *ast.Ident:
		b.resolve(owner, call, fun, kind)
	case *ast.SelectorExpr:
		b.resolve(owner, call, fun.Sel, kind)
		b.walk(owner, fun.X)
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			b.resolve(owner, call, id, kind)
		} else {
			b.walk(owner, fun.X)
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			b.resolve(owner, call, id, kind)
		} else {
			b.walk(owner, fun.X)
		}
	default:
		b.walk(owner, call.Fun)
	}
	for _, arg := range call.Args {
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			litNode := b.litNode(owner, lit)
			b.edge(owner, litNode, ArgLit, call, arg.Pos())
			b.walk(litNode, lit.Body)
			continue
		}
		b.walk(owner, arg)
	}
}

// resolve classifies the callee identifier: an interface method fans out to
// every module implementation (Dynamic), a declared module function becomes
// a Static (or Spawn) edge, anything else is a leaf.
func (b *builder) resolve(owner *Node, call *ast.CallExpr, id *ast.Ident, kind EdgeKind) {
	fn, ok := b.pkg.Info.ObjectOf(id).(*types.Func)
	if !ok {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		dyn := Dynamic
		if kind == Spawn {
			dyn = Spawn
		}
		for _, callee := range b.g.implementers(sig.Recv().Type(), fn.Name(), fn.Pkg()) {
			b.edge(owner, callee, dyn, call, call.Pos())
		}
		return
	}
	if callee := b.g.NodeOf(fn); callee != nil {
		b.edge(owner, callee, kind, call, call.Pos())
	}
}

// computeSpawners fills SpawnerParams by fixpoint: the base case marks
// parameters a function hands to its own goroutines (go p(...), or p(...)
// inside a literal it spawns); propagation marks parameters forwarded to
// another spawner's spawning position.
func (g *Graph) computeSpawners() {
	for _, n := range g.Nodes {
		n.SpawnerParams = make([]bool, len(n.Params))
		g.baseSpawners(n)
	}
	nested := g.nestedLits()
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if len(n.Params) == 0 {
				continue
			}
			scan := append([]*Node{n}, nested[n]...)
			for _, body := range scan {
				for _, e := range body.Out {
					if e.Site == nil || e.Callee == nil {
						continue
					}
					if g.forwardSpawn(n, e) {
						changed = true
					}
				}
			}
		}
	}
}

// forwardSpawn marks n's parameters that edge e forwards into a spawning
// position of its callee, reporting whether anything changed.
func (g *Graph) forwardSpawn(n *Node, e *Edge) bool {
	callee := e.Callee
	if len(callee.SpawnerParams) == 0 {
		return false
	}
	changed := false
	for j, arg := range e.Site.Args {
		pj := j
		if pj >= len(callee.SpawnerParams) {
			pj = len(callee.SpawnerParams) - 1 // variadic tail
		}
		if pj < 0 || !callee.SpawnerParams[pj] {
			continue
		}
		obj := argObject(n.Pkg.Info, arg)
		if obj == nil {
			continue
		}
		for i, p := range n.Params {
			if p != nil && p == obj && !n.SpawnerParams[i] {
				n.SpawnerParams[i] = true
				changed = true
			}
		}
	}
	return changed
}

// argObject resolves the object a plain identifier or selector argument
// refers to, or nil.
func argObject(info *types.Info, arg ast.Expr) types.Object {
	switch v := ast.Unparen(arg).(type) {
	case *ast.Ident:
		return info.Uses[v]
	case *ast.SelectorExpr:
		return info.Uses[v.Sel]
	}
	return nil
}

// baseSpawners scans n's full syntactic body (literals included — their
// calls of n's parameters still execute on n's goroutines) for parameters
// spawned directly or invoked inside a spawned literal.
func (g *Graph) baseSpawners(n *Node) {
	if len(n.Params) == 0 || n.Body == nil {
		return
	}
	mark := func(obj types.Object) {
		for i, p := range n.Params {
			if p != nil && p == obj {
				n.SpawnerParams[i] = true
			}
		}
	}
	ast.Inspect(n.Body, func(node ast.Node) bool {
		gs, ok := node.(*ast.GoStmt)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(gs.Call.Fun).(type) {
		case *ast.Ident:
			mark(n.Pkg.Info.Uses[fun])
		case *ast.FuncLit:
			ast.Inspect(fun.Body, func(inner ast.Node) bool {
				if c, ok := inner.(*ast.CallExpr); ok {
					if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok {
						mark(n.Pkg.Info.Uses[id])
					}
				}
				return true
			})
		}
		return true
	})
}

// nestedLits maps each declared node to every literal node syntactically
// inside it (transitively).
func (g *Graph) nestedLits() map[*Node][]*Node {
	out := make(map[*Node][]*Node)
	for _, n := range g.Nodes {
		for e := n.Encl; e != nil; e = e.Encl {
			out[e] = append(out[e], n)
		}
	}
	return out
}

// Reach is a memoized transitive attribute over the graph: Reaches(n)
// reports whether n, or anything reachable from n over the followed edges,
// satisfies the local predicate. Computed once by fixpoint, so recursion and
// mutual recursion cost nothing and cannot loop.
type Reach struct {
	local  map[*Node]bool
	attr   map[*Node]bool
	follow func(*Edge) bool
}

// NewReach evaluates local once per node and closes it transitively over
// the edges follow admits.
func NewReach(g *Graph, local func(*Node) bool, follow func(*Edge) bool) *Reach {
	r := &Reach{
		local:  make(map[*Node]bool, len(g.Nodes)),
		attr:   make(map[*Node]bool, len(g.Nodes)),
		follow: follow,
	}
	for _, n := range g.Nodes {
		v := local(n)
		r.local[n] = v
		r.attr[n] = v
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if r.attr[n] {
				continue
			}
			for _, e := range n.Out {
				if follow(e) && r.attr[e.Callee] {
					r.attr[n] = true
					changed = true
					break
				}
			}
		}
	}
	return r
}

// Reaches reports the transitive attribute for n (false for nil).
func (r *Reach) Reaches(n *Node) bool { return n != nil && r.attr[n] }

// Local reports whether the predicate held on n itself.
func (r *Reach) Local(n *Node) bool { return n != nil && r.local[n] }

// Path returns a shortest followed-edge path from n to the nearest node
// where the local predicate holds. It is nil when n itself satisfies the
// predicate or when nothing is reachable.
func (r *Reach) Path(n *Node) []*Edge {
	if n == nil || r.local[n] || !r.attr[n] {
		return nil
	}
	type hop struct {
		node *Node
		via  *Edge
		prev *hop
	}
	visited := map[*Node]bool{n: true}
	queue := []*hop{{node: n}}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		for _, e := range h.node.Out {
			if !r.follow(e) || visited[e.Callee] || !r.attr[e.Callee] {
				continue
			}
			next := &hop{node: e.Callee, via: e, prev: h}
			if r.local[e.Callee] {
				var path []*Edge
				for cur := next; cur.via != nil; cur = cur.prev {
					path = append([]*Edge{cur.via}, path...)
				}
				return path
			}
			visited[e.Callee] = true
			queue = append(queue, next)
		}
	}
	return nil
}
