package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheck flags calls whose error result is silently discarded: the call
// appears as a bare statement (or a go/defer statement) and at least one of
// its results is the built-in error type. Buffalo's scheduler and memory
// estimator communicate OOM pressure exclusively through errors, so a
// dropped error can swallow the very signal the bucket search relies on.
//
// An explicit `_ = f()` assignment is treated as a deliberate, reviewable
// discard and is not flagged. A small set of best-effort calls is exempt:
// fmt printing to stdout, fmt.Fprint* to os.Stdout/os.Stderr, and writes
// into in-memory sinks (strings.Builder, bytes.Buffer) that are documented
// never to fail.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "error results must not be silently discarded",
	Run:  runErrCheck,
}

func runErrCheck(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					checkDiscardedError(p, call, "")
				}
			case *ast.GoStmt:
				checkDiscardedError(p, s.Call, "go ")
			case *ast.DeferStmt:
				checkDiscardedError(p, s.Call, "defer ")
			}
			return true
		})
	}
}

func checkDiscardedError(p *Pass, call *ast.CallExpr, prefix string) {
	tv, ok := p.Info.Types[call]
	if !ok || !returnsError(tv.Type) {
		return
	}
	fn := staticCallee(p.Info, call)
	if errCheckExempt(p, fn, call) {
		return
	}
	label := "call"
	if fn != nil {
		label = fn.FullName()
	}
	p.Reportf(call.Pos(), "%serror result of %s is discarded", prefix, label)
}

// errCheckExempt reports whether the callee is on the best-effort allowlist.
func errCheckExempt(p *Pass, fn *types.Func, call *ast.CallExpr) bool {
	if fn == nil {
		return false
	}
	path := funcPkgPath(fn)
	name := fn.Name()
	switch path {
	case "fmt":
		if strings.HasPrefix(name, "Print") {
			return true // stdout printing is best-effort
		}
		if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
			return isStdStream(p, call.Args[0])
		}
	case "strings", "bytes":
		// strings.Builder and bytes.Buffer writes are documented to never
		// return a non-nil error.
		recv := recvTypeName(fn)
		return recv == "Builder" || recv == "Buffer"
	}
	return false
}

// isStdStream reports whether expr statically refers to os.Stdout or
// os.Stderr.
func isStdStream(p *Pass, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.Info.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return false
	}
	return obj.Name() == "Stdout" || obj.Name() == "Stderr"
}
