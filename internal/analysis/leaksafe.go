package analysis

import (
	"go/ast"
	"go/types"

	"buffalo/internal/analysis/callgraph"
)

// LeakSafe flags goroutines that can never terminate: a `go` statement
// whose spawned function reaches — over synchronous call edges, interface
// dispatch included — an unconditional `for { ... }` loop with no exit
// (return, break, goto, panic) and no termination signal (a select, a
// channel receive, or a range over a channel, directly or through a call
// that reaches one). Buffalo's pipeline spawns samplers, planner pools, and
// prefetchers per session; a stage that cannot observe shutdown outlives
// its session and leaks memory, ledger reservations, and OS threads.
//
// Two spawn shapes are checked: direct `go f(...)` / `go func(){...}()`
// statements, and functions handed to a *spawner* — a function (like
// pipeline.Pipeline.Go) that passes one of its parameters to a goroutine,
// detected transitively by the call-graph builder — so stage bodies are
// checked at the call site that submits them, where the code lives.
var LeakSafe = &Analyzer{
	Name: "leaksafe",
	Doc:  "every spawned goroutine must be able to reach termination",
	Run:  runLeakSafe,
}

func runLeakSafe(p *Pass) {
	if p.state == nil {
		return
	}
	g := p.state.Graph()
	forever := p.state.Forever()
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.GoStmt:
				for _, e := range g.EdgesAt(v.Call) {
					if e.Kind != callgraph.Spawn || !forever.Reaches(e.Callee) {
						continue
					}
					p.ReportChain(v.Pos(), p.state.ForeverChain(e.Callee),
						"goroutine spawned here can never terminate: %s reaches an inescapable loop", e.Callee.Name)
					break
				}
			case *ast.CallExpr:
				checkSpawnerArgs(p, g, forever, v)
			}
			return true
		})
	}
}

// checkSpawnerArgs flags function values handed to a spawner parameter —
// one the callee (transitively) passes to a goroutine — when the spawned
// body reaches an inescapable loop.
func checkSpawnerArgs(p *Pass, g *callgraph.Graph, forever *callgraph.Reach, call *ast.CallExpr) {
	callee := g.NodeOf(staticCallee(p.Info, call))
	if callee == nil || len(callee.SpawnerParams) == 0 {
		return
	}
	for j, arg := range call.Args {
		pj := j
		if pj >= len(callee.SpawnerParams) {
			pj = len(callee.SpawnerParams) - 1 // variadic tail
		}
		if !callee.SpawnerParams[pj] {
			continue
		}
		var target *callgraph.Node
		switch a := ast.Unparen(arg).(type) {
		case *ast.FuncLit:
			target = g.NodeOfLit(a)
		case *ast.Ident:
			if fn, ok := p.Info.Uses[a].(*types.Func); ok {
				target = g.NodeOf(fn)
			}
		case *ast.SelectorExpr:
			if fn, ok := p.Info.Uses[a.Sel].(*types.Func); ok {
				target = g.NodeOf(fn)
			}
		}
		if target == nil || !forever.Reaches(target) {
			continue
		}
		p.ReportChain(arg.Pos(), p.state.ForeverChain(target),
			"function passed to %s runs on a spawned goroutine and can never terminate: %s reaches an inescapable loop",
			callee.Name, target.Name)
	}
}
