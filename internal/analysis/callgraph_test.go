package analysis

import (
	"strings"
	"testing"

	"buffalo/internal/analysis/callgraph"
)

// fixtureGraph builds the shared call graph over the module plus one
// fixture package, the way a real run does.
func fixtureGraph(t *testing.T, name string) *callgraph.Graph {
	t.Helper()
	p, pkg := loadFixture(t, name)
	s := newRunState(p, []*Package{pkg}, &RunOptions{})
	return s.Graph()
}

func graphNode(t *testing.T, g *callgraph.Graph, name string) *callgraph.Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("node %q not in graph", name)
	return nil
}

// edgeTo reports whether caller has an out-edge of the given kind to a
// callee with the given name.
func edgeTo(caller *callgraph.Node, kind callgraph.EdgeKind, callee string) bool {
	for _, e := range caller.Out {
		if e.Kind == kind && e.Callee.Name == callee {
			return true
		}
	}
	return false
}

func TestCallGraphEdges(t *testing.T) {
	g := fixtureGraph(t, "callgraph")
	const fx = "fixture/callgraph."

	// Direct recursion: a static self-edge.
	fact := graphNode(t, g, fx+"Fact")
	if !edgeTo(fact, callgraph.Static, fx+"Fact") {
		t.Error("Fact lacks its recursive static self-edge")
	}

	// Mutual recursion: the cycle must exist and not wedge anything.
	ping := graphNode(t, g, fx+"Ping")
	pong := graphNode(t, g, fx+"Pong")
	if !edgeTo(ping, callgraph.Static, fx+"Pong") || !edgeTo(pong, callgraph.Static, fx+"Ping") {
		t.Error("Ping/Pong mutual recursion edges missing")
	}

	// Interface dispatch fans out to every implementing type.
	talk := graphNode(t, g, fx+"Talk")
	if !edgeTo(talk, callgraph.Dynamic, fx+"(dog).Speak") {
		t.Error("Talk lacks dynamic edge to dog.Speak")
	}
	if !edgeTo(talk, callgraph.Dynamic, fx+"(cat).Speak") {
		t.Error("Talk lacks dynamic edge to cat.Speak")
	}

	// A method value is a reference, not a call.
	mv := graphNode(t, g, fx+"MethodValue")
	if !edgeTo(mv, callgraph.Ref, fx+"(dog).Speak") {
		t.Error("MethodValue lacks ref edge to dog.Speak")
	}
	if edgeTo(mv, callgraph.Static, fx+"(dog).Speak") {
		t.Error("MethodValue must not have a static call edge to dog.Speak")
	}

	// Go statements become spawn edges, to declared functions and literals.
	if !edgeTo(graphNode(t, g, fx+"SpawnWorker"), callgraph.Spawn, fx+"worker") {
		t.Error("SpawnWorker lacks spawn edge to worker")
	}
	spawnLit := graphNode(t, g, fx+"SpawnLit")
	var litName string
	for _, e := range spawnLit.Out {
		if e.Kind == callgraph.Spawn {
			litName = e.Callee.Name
		}
	}
	if !strings.HasPrefix(litName, fx+"SpawnLit$") {
		t.Fatalf("SpawnLit spawn edge goes to %q, want its own literal", litName)
	}
	if !edgeTo(graphNode(t, g, litName), callgraph.Static, fx+"worker") {
		t.Error("spawned literal lacks static edge to worker")
	}

	// Immediately invoked and argument literals.
	invoke := graphNode(t, g, fx+"InvokeLit")
	foundLitCall := false
	for _, e := range invoke.Out {
		if e.Kind == callgraph.LitCall {
			foundLitCall = true
		}
	}
	if !foundLitCall {
		t.Error("InvokeLit lacks a litcall edge")
	}
	use := graphNode(t, g, fx+"UseHook")
	foundArgLit := false
	for _, e := range use.Out {
		if e.Kind == callgraph.ArgLit {
			foundArgLit = true
		}
	}
	if !foundArgLit {
		t.Error("UseHook lacks an arglit edge for its literal callback")
	}
}

func TestCallGraphSpawnerParams(t *testing.T) {
	g := fixtureGraph(t, "callgraph")
	const fx = "fixture/callgraph."
	cases := []struct {
		node  string
		param int
		want  bool
	}{
		{fx + "Launch", 0, true},     // go fn() directly
		{fx + "Relaunch", 0, true},   // forwards to Launch
		{fx + "WrapLaunch", 0, true}, // invoked inside a spawned literal
		{fx + "Talk", 0, false},
		{fx + "TakeHook", 0, false}, // synchronous callback, no goroutine
	}
	for _, tc := range cases {
		n := graphNode(t, g, tc.node)
		if len(n.SpawnerParams) <= tc.param {
			t.Errorf("%s: no spawner slot %d", tc.node, tc.param)
			continue
		}
		if got := n.SpawnerParams[tc.param]; got != tc.want {
			t.Errorf("%s.SpawnerParams[%d] = %v, want %v", tc.node, tc.param, got, tc.want)
		}
	}
}

func TestReachAndPath(t *testing.T) {
	g := fixtureGraph(t, "callgraph")
	const fx = "fixture/callgraph."
	worker := graphNode(t, g, fx+"worker")
	reach := callgraph.NewReach(g,
		func(n *callgraph.Node) bool { return n == worker },
		func(e *callgraph.Edge) bool { return e.Kind == callgraph.Static || e.Kind == callgraph.Spawn })

	spawnLitNode := graphNode(t, g, fx+"SpawnLit")
	if !reach.Reaches(spawnLitNode) {
		t.Error("SpawnLit should reach worker through its spawned literal")
	}
	path := reach.Path(spawnLitNode)
	if len(path) != 2 {
		t.Fatalf("Path(SpawnLit) has %d hops, want 2 (literal, worker)", len(path))
	}
	if path[len(path)-1].Callee != worker {
		t.Error("path does not terminate at worker")
	}

	// Recursive nodes must not satisfy reachability they don't have, and
	// the fixpoint must terminate on cycles (implicitly: we got here).
	if reach.Reaches(graphNode(t, g, fx+"Fact")) {
		t.Error("Fact should not reach worker")
	}
	if reach.Path(worker) != nil {
		t.Error("Path from a locally-true node should be nil")
	}
}
