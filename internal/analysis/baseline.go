package analysis

import (
	"encoding/json"
	"fmt"
	"os"
)

// HotBaseline is the committed hot-path allocation budget: for every hot
// root, how many allocation sites of each kind each reachable function may
// contain. The hotalloc analyzer fails when the module grows beyond it and
// advises a rewrite when the module shrinks below it, so the file always
// tracks reality and the diff shows exactly which budget moved.
type HotBaseline struct {
	Roots map[string]*RootBaseline `json:"roots"`
}

// RootBaseline is one hot root's budget.
type RootBaseline struct {
	// Total is the root's overall reachable-site count, a quick number to
	// compare against allocs/op in BENCH_*.json.
	Total int `json:"total"`
	// Funcs maps reachable function names to per-kind site counts
	// (make, new, append, lit, iface).
	Funcs map[string]map[string]int `json:"funcs"`
}

// NewHotBaseline returns an empty baseline ready to be filled.
func NewHotBaseline() *HotBaseline {
	return &HotBaseline{Roots: make(map[string]*RootBaseline)}
}

// Root returns (creating if needed) the budget for one root.
func (b *HotBaseline) Root(name string) *RootBaseline {
	rb := b.Roots[name]
	if rb == nil {
		rb = &RootBaseline{Funcs: make(map[string]map[string]int)}
		b.Roots[name] = rb
	}
	return rb
}

// Add records count sites of one kind in one function under one root.
func (b *HotBaseline) Add(root, fn, kind string, count int) {
	rb := b.Root(root)
	byKind := rb.Funcs[fn]
	if byKind == nil {
		byKind = make(map[string]int)
		rb.Funcs[fn] = byKind
	}
	byKind[kind] += count
	rb.Total += count
}

// Count returns the budget for one (root, function, kind), zero when
// absent.
func (b *HotBaseline) Count(root, fn, kind string) int {
	if b == nil {
		return 0
	}
	rb := b.Roots[root]
	if rb == nil {
		return 0
	}
	return rb.Funcs[fn][kind]
}

// ReadHotBaseline loads a baseline file.
func ReadHotBaseline(path string) (*HotBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b := NewHotBaseline()
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("analysis: parsing hotalloc baseline %s: %w", path, err)
	}
	if b.Roots == nil {
		b.Roots = make(map[string]*RootBaseline)
	}
	return b, nil
}

// WriteFile writes the baseline as stable, human-diffable JSON (map keys
// are emitted sorted).
func (b *HotBaseline) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
