package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// ImportPath is the full import path, e.g. "buffalo/internal/device".
	ImportPath string
	// Dir is the absolute directory the sources were read from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is a fully loaded module: every package parsed with comments and
// type-checked against the standard library, ready for analyzers.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	Root       string
	// Packages holds the module's packages in dependency (topological)
	// order, so analyzers that follow cross-package references always see
	// dependencies type-checked first.
	Packages []*Package

	byPath map[string]*Package
	std    types.Importer
}

// moduleImporter resolves module-internal import paths from the program's
// own type-checked packages and delegates everything else (the standard
// library) to the stdlib source importer. buffalo-vet is stdlib-only, so
// there are no third-party imports to resolve.
type moduleImporter struct{ prog *Program }

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.prog.byPath[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: import cycle or unchecked dependency %q", path)
		}
		return pkg.Types, nil
	}
	return m.prog.std.Import(path)
}

// LoadModule parses and type-checks every package under root (a directory
// containing go.mod). Test files, testdata trees, vendor trees, and hidden
// directories are skipped.
func LoadModule(root string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:       token.NewFileSet(),
		ModulePath: modPath,
		Root:       root,
		byPath:     make(map[string]*Package),
	}
	prog.std = importer.ForCompiler(prog.Fset, "source", nil)

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		pkg, err := prog.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil { // no buildable non-test files
			continue
		}
		prog.Packages = append(prog.Packages, pkg)
		prog.byPath[pkg.ImportPath] = pkg
	}
	if err := prog.sortByDeps(); err != nil {
		return nil, err
	}
	for _, pkg := range prog.Packages {
		if err := prog.check(pkg); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// LoadDir parses and type-checks one extra directory (e.g. a test fixture
// under testdata) as importPath, resolving imports of module packages from
// the already-loaded program. The package is returned but not added to
// prog.Packages.
func (p *Program) LoadDir(dir, importPath string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkg, err := p.parseDirAs(dir, importPath)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	if err := p.check(pkg); err != nil {
		return nil, err
	}
	return pkg, nil
}

// Package returns the loaded package with the given import path, or nil.
func (p *Program) Package(path string) *Package { return p.byPath[path] }

// parseDir parses dir as the module package derived from its location.
func (p *Program) parseDir(dir string) (*Package, error) {
	rel, err := filepath.Rel(p.Root, dir)
	if err != nil {
		return nil, err
	}
	importPath := p.ModulePath
	if rel != "." {
		importPath = p.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return p.parseDirAs(dir, importPath)
}

func (p *Program) parseDirAs(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Honor //go:build constraints and GOOS/GOARCH filename rules so
		// the loaded file set matches what `go build` would compile here
		// (e.g. a race_on.go/race_off.go build-tag pair must not both load).
		if match, err := build.Default.MatchFile(dir, name); err != nil {
			return nil, err
		} else if !match {
			continue
		}
		f, err := parser.ParseFile(p.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return &Package{ImportPath: importPath, Dir: dir, Files: files}, nil
}

// check type-checks pkg, filling Types and Info.
func (p *Program) check(pkg *Package) error {
	var errs []error
	conf := types.Config{
		Importer: &moduleImporter{prog: p},
		Error:    func(err error) { errs = append(errs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, _ := conf.Check(pkg.ImportPath, p.Fset, pkg.Files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for i, e := range errs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(errs)-i))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return fmt.Errorf("analysis: type errors in %s:\n  %s", pkg.ImportPath, strings.Join(msgs, "\n  "))
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// sortByDeps orders Packages so every module-internal import precedes its
// importer, failing on cycles.
func (p *Program) sortByDeps() error {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int)
	var order []*Package
	var visit func(pkg *Package) error
	visit = func(pkg *Package) error {
		switch state[pkg.ImportPath] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle through %q", pkg.ImportPath)
		}
		state[pkg.ImportPath] = visiting
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if dep, ok := p.byPath[path]; ok {
					if err := visit(dep); err != nil {
						return err
					}
				}
			}
		}
		state[pkg.ImportPath] = done
		order = append(order, pkg)
		return nil
	}
	// Visit in a stable order so output ordering is deterministic.
	sorted := append([]*Package(nil), p.Packages...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	for _, pkg := range sorted {
		if err := visit(pkg); err != nil {
			return err
		}
	}
	p.Packages = order
	return nil
}

// packageDirs walks root collecting directories that may hold module
// packages, skipping hidden directories, testdata, and vendor trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if rest != "" {
				return strings.Trim(rest, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}
