package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ShapeCheck validates tensor shapes that are literally visible in the
// source: constant-foldable dimensions passed to tensor.New/FromSlice must
// be positive, and when both operands of a matmul-family call were built
// in the same function from constant dimensions, the contraction
// dimensions must agree. The tensor kernels panic on shape mismatch at run
// time; this catches the mistake before a multi-hour training run does.
var ShapeCheck = &Analyzer{
	Name: "shapecheck",
	Doc:  "literal tensor dimensions must be positive and matmul-compatible",
	Run:  runShapeCheck,
}

// matmulShapes describes the contraction rule of each matmul-family
// function: which argument indices hold the operands and which dims must
// match. Given a is rows x cols:
//
//	MatMul:    a.Cols == b.Rows  (a @ b)
//	MatMulATB: a.Rows == b.Rows  (aT @ b)
//	MatMulABT: a.Cols == b.Cols  (a @ bT)
var matmulShapes = map[string]struct {
	aArg, bArg int
	aDim, bDim int // 0 = rows, 1 = cols
	rule       string
}{
	"MatMul":        {0, 1, 1, 0, "a.Cols == b.Rows"},
	"MatMulInto":    {1, 2, 1, 0, "a.Cols == b.Rows"},
	"MatMulATB":     {0, 1, 0, 0, "a.Rows == b.Rows"},
	"MatMulATBInto": {1, 2, 0, 0, "a.Rows == b.Rows"},
	"MatMulABT":     {0, 1, 1, 1, "a.Cols == b.Cols"},
	"MatMulABTInto": {1, 2, 1, 1, "a.Cols == b.Cols"},
}

func runShapeCheck(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkShapesInFunc(p, fd.Body)
		}
	}
}

func checkShapesInFunc(p *Pass, body *ast.BlockStmt) {
	// dims maps a local variable to the constant [rows, cols] it was built
	// with, when both were constant-foldable.
	dims := make(map[types.Object][2]int64)
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 || len(s.Lhs) == 0 {
				return true
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			if r, c, ok := constructorDims(p, call); ok {
				if id, isIdent := ast.Unparen(s.Lhs[0]).(*ast.Ident); isIdent && id.Name != "_" {
					if obj := p.Info.ObjectOf(id); obj != nil {
						dims[obj] = [2]int64{r, c}
					}
				}
			}
		case *ast.CallExpr:
			checkConstructorCall(p, s)
			checkMatmulCall(p, s, dims)
		}
		return true
	})
}

// isTensorFunc reports whether fn is the named package-level function of
// the tensor package.
func isTensorFunc(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	path := funcPkgPath(fn)
	return path == "buffalo/internal/tensor" || strings.HasSuffix(path, "/internal/tensor")
}

// constDim folds expr to an int64 if it is a compile-time constant.
func constDim(p *Pass, expr ast.Expr) (int64, bool) {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// constructorDims returns the constant (rows, cols) of a tensor.New or
// tensor.FromSlice call when both dimensions fold.
func constructorDims(p *Pass, call *ast.CallExpr) (r, c int64, ok bool) {
	fn := staticCallee(p.Info, call)
	if !isTensorFunc(fn, "New") && !isTensorFunc(fn, "FromSlice") {
		return 0, 0, false
	}
	if len(call.Args) < 2 {
		return 0, 0, false
	}
	r, rOK := constDim(p, call.Args[0])
	c, cOK := constDim(p, call.Args[1])
	if !rOK || !cOK {
		return 0, 0, false
	}
	return r, c, true
}

// checkConstructorCall flags non-positive constant dimensions.
func checkConstructorCall(p *Pass, call *ast.CallExpr) {
	fn := staticCallee(p.Info, call)
	if !isTensorFunc(fn, "New") && !isTensorFunc(fn, "FromSlice") {
		return
	}
	for i, arg := range call.Args[:min(2, len(call.Args))] {
		v, ok := constDim(p, arg)
		if !ok {
			continue
		}
		if v <= 0 {
			dim := "rows"
			if i == 1 {
				dim = "cols"
			}
			p.Reportf(arg.Pos(), "tensor %s dimension must be positive, got %d", dim, v)
		}
	}
}

// checkMatmulCall flags contraction mismatches between operands whose
// constant shapes are known.
func checkMatmulCall(p *Pass, call *ast.CallExpr, dims map[types.Object][2]int64) {
	fn := staticCallee(p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	spec, ok := matmulShapes[fn.Name()]
	if !ok || !isTensorFunc(fn, fn.Name()) {
		return
	}
	if len(call.Args) <= spec.bArg {
		return
	}
	aShape, aOK := shapeOf(p, call.Args[spec.aArg], dims)
	bShape, bOK := shapeOf(p, call.Args[spec.bArg], dims)
	if !aOK || !bOK {
		return
	}
	if aShape[spec.aDim] != bShape[spec.bDim] {
		p.Reportf(call.Pos(), "%s shape mismatch: %dx%d vs %dx%d violates %s",
			fn.Name(), aShape[0], aShape[1], bShape[0], bShape[1], spec.rule)
	}
}

// shapeOf resolves an argument's constant shape: either a tracked local
// variable or an inline constructor call.
func shapeOf(p *Pass, expr ast.Expr, dims map[types.Object][2]int64) ([2]int64, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := p.Info.ObjectOf(e)
		if obj == nil {
			return [2]int64{}, false
		}
		shape, ok := dims[obj]
		return shape, ok
	case *ast.CallExpr:
		if r, c, ok := constructorDims(p, e); ok {
			return [2]int64{r, c}, true
		}
	}
	return [2]int64{}, false
}
