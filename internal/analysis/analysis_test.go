package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
)

var (
	progOnce sync.Once
	prog     *Program
	progErr  error
)

// moduleProgram loads the repository module once for every test.
func moduleProgram(t *testing.T) *Program {
	t.Helper()
	progOnce.Do(func() { prog, progErr = LoadModule(filepath.Join("..", "..")) })
	if progErr != nil {
		t.Fatalf("LoadModule: %v", progErr)
	}
	return prog
}

// loadFixture type-checks one seeded-violation package under testdata/src.
func loadFixture(t *testing.T, name string) (*Program, *Package) {
	t.Helper()
	p := moduleProgram(t)
	pkg, err := p.LoadDir(filepath.Join("testdata", "src", name), "fixture/"+name)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", name, err)
	}
	return p, pkg
}

// wantLines scans the fixture sources for "want:<analyzer>" markers and
// returns the set of "file:line" strings expected to be reported.
func wantLines(t *testing.T, dir, analyzer string) map[string]bool {
	t.Helper()
	marker := "want:" + analyzer
	want := make(map[string]bool)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if strings.Contains(line, marker) {
				want[fmt.Sprintf("%s:%d", e.Name(), i+1)] = true
			}
		}
	}
	return want
}

// gotLines reduces diagnostics to the same "file:line" key space.
func gotLines(diags []Diagnostic) map[string]bool {
	got := make(map[string]bool)
	for _, d := range diags {
		got[fmt.Sprintf("%s:%d", filepath.Base(d.File), d.Line)] = true
	}
	return got
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// checkFixture runs exactly one analyzer over its fixture package and
// demands the findings match the want markers line for line.
func checkFixture(t *testing.T, analyzer *Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", analyzer.Name)
	p, pkg := loadFixture(t, analyzer.Name)
	diags := Run(p, []*Package{pkg}, []*Analyzer{analyzer})
	want := wantLines(t, dir, analyzer.Name)
	got := gotLines(diags)
	if len(want) == 0 {
		t.Fatalf("fixture %s has no want markers", dir)
	}
	for k := range want {
		if !got[k] {
			t.Errorf("%s: expected a %s finding at %s, got none", dir, analyzer.Name, k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("%s: unexpected %s finding at %s", dir, analyzer.Name, k)
		}
	}
	if t.Failed() {
		t.Logf("want: %v", keys(want))
		t.Logf("got:  %v", keys(got))
		for _, d := range diags {
			t.Logf("diag: %s", d)
		}
	}
}

func TestAllocFreeFixture(t *testing.T)  { checkFixture(t, AllocFree) }
func TestErrCheckFixture(t *testing.T)   { checkFixture(t, ErrCheck) }
func TestLockSafeFixture(t *testing.T)   { checkFixture(t, LockSafe) }
func TestLeakSafeFixture(t *testing.T)   { checkFixture(t, LeakSafe) }
func TestShapeCheckFixture(t *testing.T) { checkFixture(t, ShapeCheck) }

// TestLockSafeTransitiveRequired proves the interprocedural extension is
// doing work the old analyzer could not: with the call-graph hop disabled,
// none of the helper-wrapped fixture violations are found.
func TestLockSafeTransitiveRequired(t *testing.T) {
	dir := filepath.Join("testdata", "src", "locksafe")
	transWant := wantLines(t, dir, "locksafe-transitive")
	if len(transWant) == 0 {
		t.Fatal("locksafe fixture has no transitive markers")
	}
	p, pkg := loadFixture(t, "locksafe")
	locksafeTransitive = false
	defer func() { locksafeTransitive = true }()
	got := gotLines(Run(p, []*Package{pkg}, []*Analyzer{LockSafe}))
	for k := range transWant {
		if got[k] {
			t.Errorf("intraprocedural locksafe unexpectedly caught %s", k)
		}
	}
}

// TestLockSafeChain asserts transitive diagnostics carry the offending
// call chain down to the classified blocking operation.
func TestLockSafeChain(t *testing.T) {
	p, pkg := loadFixture(t, "locksafe")
	diags := Run(p, []*Package{pkg}, []*Analyzer{LockSafe})
	found := false
	for _, d := range diags {
		if !strings.Contains(d.Message, "reserve") || len(d.Chain) == 0 {
			continue
		}
		found = true
		last := d.Chain[len(d.Chain)-1]
		if !strings.Contains(last, "ledger allocation GPU.Alloc") {
			t.Errorf("chain terminal %q does not name the blocking op", last)
		}
	}
	if !found {
		t.Fatal("no chained diagnostic through the reserve helper")
	}
}

// TestHotAllocRecordAndGate drives the baseline lifecycle on the hotalloc
// fixture: record the census, gate cleanly against it, then prove the gate
// fails when the baseline forgets one site and advises when it over-budgets.
func TestHotAllocRecordAndGate(t *testing.T) {
	p, pkg := loadFixture(t, "hotalloc")
	rec := &RunOptions{RecordHotSites: true}
	if diags := RunOpts(p, []*Package{pkg}, []*Analyzer{HotAlloc}, rec); len(diags) != 0 {
		t.Fatalf("recording run reported %d diagnostics", len(diags))
	}
	sites := rec.HotSites
	if sites == nil {
		t.Fatal("recording run produced no sites")
	}
	root := sites.Roots["fixture-kernel"]
	if root == nil {
		t.Fatalf("missing fixture-kernel root; have %v", rootNames(sites))
	}
	if root.Total != 5 {
		t.Errorf("fixture-kernel total = %d, want 5", root.Total)
	}
	kernel := root.Funcs["fixture/hotalloc.Kernel"]
	if kernel["make"] != 1 || kernel["append"] != 1 {
		t.Errorf("Kernel census = %v, want make:1 append:1", kernel)
	}
	scale := root.Funcs["fixture/hotalloc.scale"]
	if scale["new"] != 1 || scale["lit"] != 1 || scale["iface"] != 1 {
		t.Errorf("scale census = %v, want new:1 lit:1 iface:1", scale)
	}
	if _, cold := root.Funcs["fixture/hotalloc.Cold"]; cold {
		t.Error("unreachable Cold counted against the hot root")
	}

	// Gating against the recorded census is clean.
	gate := &RunOptions{HotBaseline: sites}
	if diags := RunOpts(p, []*Package{pkg}, []*Analyzer{HotAlloc}, gate); len(diags) != 0 {
		t.Fatalf("self-gate reported %d diagnostics: %v", len(diags), diags)
	}
	if len(gate.Shrunk) != 0 {
		t.Fatalf("self-gate reported slack: %v", gate.Shrunk)
	}

	// A baseline that forgot the make site must fail on exactly it — the
	// "new hot-path allocation" acceptance case.
	tight := copyBaseline(sites)
	tight.Roots["fixture-kernel"].Funcs["fixture/hotalloc.Kernel"]["make"] = 0
	fail := &RunOptions{HotBaseline: tight}
	diags := RunOpts(p, []*Package{pkg}, []*Analyzer{HotAlloc}, fail)
	if len(diags) != 1 {
		t.Fatalf("tightened gate reported %d diagnostics, want 1: %v", len(diags), diags)
	}
	if d := diags[0]; d.Analyzer != "hotalloc" || !strings.Contains(d.Message, "make") {
		t.Errorf("unexpected gate diagnostic: %s", d)
	}

	// A baseline with slack produces an advisory, not a diagnostic.
	loose := copyBaseline(sites)
	loose.Roots["fixture-kernel"].Funcs["fixture/hotalloc.Kernel"]["make"] = 3
	slack := &RunOptions{HotBaseline: loose}
	if diags := RunOpts(p, []*Package{pkg}, []*Analyzer{HotAlloc}, slack); len(diags) != 0 {
		t.Fatalf("loose gate reported %d diagnostics", len(diags))
	}
	if len(slack.Shrunk) != 1 || !strings.Contains(slack.Shrunk[0], "make") {
		t.Errorf("loose gate slack = %v, want one make advisory", slack.Shrunk)
	}
}

func copyBaseline(b *HotBaseline) *HotBaseline {
	out := NewHotBaseline()
	for root, rb := range b.Roots {
		for fn, kinds := range rb.Funcs {
			for kind, count := range kinds {
				out.Add(root, fn, kind, count)
			}
		}
	}
	return out
}

func rootNames(b *HotBaseline) []string {
	out := make([]string, 0, len(b.Roots))
	for k := range b.Roots {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestStaleIgnores runs the full suite with stale detection over the
// directive fixture: the two directives that suppress nothing (one naming
// the wrong analyzer, one on a clean line) are reported, the working ones
// are not.
func TestStaleIgnores(t *testing.T) {
	p, pkg := loadFixture(t, "ignored")
	opts := &RunOptions{StaleIgnores: true}
	diags := RunOpts(p, []*Package{pkg}, All(), opts)
	want := wantLines(t, filepath.Join("testdata", "src", "ignored"), "vet-ignore")
	got := make(map[string]bool)
	for _, d := range diags {
		if d.Analyzer == "vet-ignore" {
			got[fmt.Sprintf("%s:%d", filepath.Base(d.File), d.Line)] = true
		}
	}
	for k := range want {
		if !got[k] {
			t.Errorf("expected stale-ignore report at %s", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("unexpected stale-ignore report at %s", k)
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("diag: %s", d)
		}
	}
}

// TestDeterministicOrder runs the full suite over two fixture packages in
// both selection orders: the merged diagnostics must be identical and
// position-sorted, regardless of package order or analyzer interleaving.
func TestDeterministicOrder(t *testing.T) {
	p, pkgA := loadFixture(t, "locksafe")
	_, pkgB := loadFixture(t, "leaksafe")
	d1 := Run(p, []*Package{pkgA, pkgB}, All())
	d2 := Run(p, []*Package{pkgB, pkgA}, All())
	if len(d1) == 0 {
		t.Fatal("expected findings from the fixture packages")
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Errorf("diagnostics differ across package orders:\n%v\nvs\n%v", d1, d2)
	}
	for i := 1; i < len(d1); i++ {
		a, b := d1[i-1], d1[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("diagnostics out of order: %s before %s", a, b)
		}
	}
}

// TestIgnoreDirective proves //buffalo:vet-ignore suppresses exactly the
// named analyzer, in both inline and preceding-line placement, and that a
// directive naming a different analyzer does not suppress.
func TestIgnoreDirective(t *testing.T) {
	p, pkg := loadFixture(t, "ignored")
	diags := Run(p, []*Package{pkg}, []*Analyzer{ShapeCheck})
	want := wantLines(t, filepath.Join("testdata", "src", "ignored"), "shapecheck")
	got := gotLines(diags)
	if len(got) != len(want) {
		t.Errorf("got %d findings, want %d (only the wrong-analyzer directive line)", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("expected surviving finding at %s", k)
		}
	}
	for _, d := range diags {
		t.Logf("diag: %s", d)
	}
}

// TestModuleClean is the acceptance gate: the repository's own packages
// must produce zero diagnostics under the full suite.
func TestModuleClean(t *testing.T) {
	p := moduleProgram(t)
	diags := Run(p, p.Packages, All())
	for _, d := range diags {
		t.Errorf("repository finding: %s", d)
	}
}

// TestByName covers analyzer selection.
func TestByName(t *testing.T) {
	got, err := ByName([]string{"allocfree", "shapecheck"})
	if err != nil || len(got) != 2 {
		t.Fatalf("ByName: %v, %d analyzers", err, len(got))
	}
	if _, err := ByName([]string{"nope"}); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}

// TestLoadModuleShape sanity-checks the loader: the module path is read
// from go.mod, dependencies precede dependents, and testdata is skipped.
func TestLoadModuleShape(t *testing.T) {
	p := moduleProgram(t)
	if p.ModulePath != "buffalo" {
		t.Fatalf("module path = %q", p.ModulePath)
	}
	pos := make(map[string]int)
	for i, pkg := range p.Packages {
		pos[pkg.ImportPath] = i
		if strings.Contains(pkg.ImportPath, "testdata") {
			t.Errorf("testdata package loaded: %s", pkg.ImportPath)
		}
		if pkg.Types == nil || pkg.Info == nil {
			t.Errorf("package %s not type-checked", pkg.ImportPath)
		}
	}
	dev, devOK := pos["buffalo/internal/device"]
	train, trainOK := pos["buffalo/internal/train"]
	if !devOK || !trainOK {
		t.Fatalf("expected device and train packages, got %v", keys(boolSet(pos)))
	}
	if dev > train {
		t.Errorf("device (%d) should be checked before train (%d)", dev, train)
	}
	// Build constraints are honored: internal/experiments carries a
	// race_on.go//race_off.go pair and only the non-race half may load
	// (loading both would redeclare raceEnabled and fail type-checking).
	exp := p.Package("buffalo/internal/experiments")
	if exp == nil {
		t.Fatal("experiments package not loaded")
	}
	for _, f := range exp.Files {
		if name := filepath.Base(p.Fset.Position(f.Pos()).Filename); name == "race_on.go" {
			t.Error("race_on.go loaded despite its //go:build race constraint")
		}
	}
}

func boolSet(m map[string]int) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}
