package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

var (
	progOnce sync.Once
	prog     *Program
	progErr  error
)

// moduleProgram loads the repository module once for every test.
func moduleProgram(t *testing.T) *Program {
	t.Helper()
	progOnce.Do(func() { prog, progErr = LoadModule(filepath.Join("..", "..")) })
	if progErr != nil {
		t.Fatalf("LoadModule: %v", progErr)
	}
	return prog
}

// loadFixture type-checks one seeded-violation package under testdata/src.
func loadFixture(t *testing.T, name string) (*Program, *Package) {
	t.Helper()
	p := moduleProgram(t)
	pkg, err := p.LoadDir(filepath.Join("testdata", "src", name), "fixture/"+name)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", name, err)
	}
	return p, pkg
}

// wantLines scans the fixture sources for "want:<analyzer>" markers and
// returns the set of "file:line" strings expected to be reported.
func wantLines(t *testing.T, dir, analyzer string) map[string]bool {
	t.Helper()
	marker := "want:" + analyzer
	want := make(map[string]bool)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if strings.Contains(line, marker) {
				want[fmt.Sprintf("%s:%d", e.Name(), i+1)] = true
			}
		}
	}
	return want
}

// gotLines reduces diagnostics to the same "file:line" key space.
func gotLines(diags []Diagnostic) map[string]bool {
	got := make(map[string]bool)
	for _, d := range diags {
		got[fmt.Sprintf("%s:%d", filepath.Base(d.File), d.Line)] = true
	}
	return got
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// checkFixture runs exactly one analyzer over its fixture package and
// demands the findings match the want markers line for line.
func checkFixture(t *testing.T, analyzer *Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", analyzer.Name)
	p, pkg := loadFixture(t, analyzer.Name)
	diags := Run(p, []*Package{pkg}, []*Analyzer{analyzer})
	want := wantLines(t, dir, analyzer.Name)
	got := gotLines(diags)
	if len(want) == 0 {
		t.Fatalf("fixture %s has no want markers", dir)
	}
	for k := range want {
		if !got[k] {
			t.Errorf("%s: expected a %s finding at %s, got none", dir, analyzer.Name, k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("%s: unexpected %s finding at %s", dir, analyzer.Name, k)
		}
	}
	if t.Failed() {
		t.Logf("want: %v", keys(want))
		t.Logf("got:  %v", keys(got))
		for _, d := range diags {
			t.Logf("diag: %s", d)
		}
	}
}

func TestAllocFreeFixture(t *testing.T)  { checkFixture(t, AllocFree) }
func TestErrCheckFixture(t *testing.T)   { checkFixture(t, ErrCheck) }
func TestLockSafeFixture(t *testing.T)   { checkFixture(t, LockSafe) }
func TestShapeCheckFixture(t *testing.T) { checkFixture(t, ShapeCheck) }

// TestIgnoreDirective proves //buffalo:vet-ignore suppresses exactly the
// named analyzer, in both inline and preceding-line placement, and that a
// directive naming a different analyzer does not suppress.
func TestIgnoreDirective(t *testing.T) {
	p, pkg := loadFixture(t, "ignored")
	diags := Run(p, []*Package{pkg}, []*Analyzer{ShapeCheck})
	want := wantLines(t, filepath.Join("testdata", "src", "ignored"), "shapecheck")
	got := gotLines(diags)
	if len(got) != len(want) {
		t.Errorf("got %d findings, want %d (only the wrong-analyzer directive line)", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("expected surviving finding at %s", k)
		}
	}
	for _, d := range diags {
		t.Logf("diag: %s", d)
	}
}

// TestModuleClean is the acceptance gate: the repository's own packages
// must produce zero diagnostics under the full suite.
func TestModuleClean(t *testing.T) {
	p := moduleProgram(t)
	diags := Run(p, p.Packages, All())
	for _, d := range diags {
		t.Errorf("repository finding: %s", d)
	}
}

// TestByName covers analyzer selection.
func TestByName(t *testing.T) {
	got, err := ByName([]string{"allocfree", "shapecheck"})
	if err != nil || len(got) != 2 {
		t.Fatalf("ByName: %v, %d analyzers", err, len(got))
	}
	if _, err := ByName([]string{"nope"}); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}

// TestLoadModuleShape sanity-checks the loader: the module path is read
// from go.mod, dependencies precede dependents, and testdata is skipped.
func TestLoadModuleShape(t *testing.T) {
	p := moduleProgram(t)
	if p.ModulePath != "buffalo" {
		t.Fatalf("module path = %q", p.ModulePath)
	}
	pos := make(map[string]int)
	for i, pkg := range p.Packages {
		pos[pkg.ImportPath] = i
		if strings.Contains(pkg.ImportPath, "testdata") {
			t.Errorf("testdata package loaded: %s", pkg.ImportPath)
		}
		if pkg.Types == nil || pkg.Info == nil {
			t.Errorf("package %s not type-checked", pkg.ImportPath)
		}
	}
	dev, devOK := pos["buffalo/internal/device"]
	train, trainOK := pos["buffalo/internal/train"]
	if !devOK || !trainOK {
		t.Fatalf("expected device and train packages, got %v", keys(boolSet(pos)))
	}
	if dev > train {
		t.Errorf("device (%d) should be checked before train (%d)", dev, train)
	}
	// Build constraints are honored: internal/experiments carries a
	// race_on.go//race_off.go pair and only the non-race half may load
	// (loading both would redeclare raceEnabled and fail type-checking).
	exp := p.Package("buffalo/internal/experiments")
	if exp == nil {
		t.Fatal("experiments package not loaded")
	}
	for _, f := range exp.Files {
		if name := filepath.Base(p.Fset.Position(f.Pos()).Filename); name == "race_on.go" {
			t.Error("race_on.go loaded despite its //go:build race constraint")
		}
	}
}

func boolSet(m map[string]int) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}
