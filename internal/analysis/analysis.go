// Package analysis implements buffalo-vet, a domain-aware static-analysis
// suite for this repository. It is stdlib-only: packages are parsed with
// go/parser and type-checked with go/types against the source importer, and
// each analyzer walks the typed ASTs looking for violations of the
// invariants Buffalo's memory-discipline results depend on:
//
//   - allocfree: simulated-GPU allocations must be freed or escape to an
//     owner, or the ledger's peak-memory curves silently corrupt.
//   - errcheck: error results must not be discarded; the memory estimator
//     and scheduler communicate OOM through errors.
//   - hotalloc: allocation sites reachable from declared hot roots (train
//     iteration, pipeline stage bodies, tensor/nn kernels) are counted per
//     root and gated against a committed baseline, so the zero-allocation
//     hot-path budget is enforced before benchmarks move.
//   - leaksafe: every spawned goroutine must be able to terminate — an
//     unconditional loop it reaches needs an exit or a termination signal
//     (select, channel receive/range, or a call that reaches one).
//   - locksafe: no simulated-transfer, I/O, or ledger Alloc calls while a
//     sync.Mutex is held (deadlock and latency hazards under concurrency).
//     The check is interprocedural: a call under a lock is flagged when any
//     function reachable from it blocks, with the chain in the diagnostic.
//   - shapecheck: literally visible tensor dimensions must be positive and
//     matmul-compatible.
//
// The interprocedural analyzers share one whole-module call graph (see
// internal/analysis/callgraph) built lazily per run.
//
// A diagnostic can be suppressed with a line directive:
//
//	//buffalo:vet-ignore <analyzer>[,<analyzer>...]  [reason]
//
// placed either at the end of the offending line or alone on the line
// directly above it. An empty analyzer list suppresses every analyzer.
// Directives that no longer suppress anything are themselves reported when
// a run asks for stale-ignore detection.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding from one analyzer.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	// Chain, when present, is the call path an interprocedural analyzer
	// followed from the reported site to the function that violates the
	// invariant, outermost call first.
	Chain []string `json:"chain,omitempty"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Column, d.Analyzer, d.Message)
}

// Analyzer is one named, independently enableable check. Per-package
// analyzers set Run; module-scoped analyzers (which need every package's
// findings merged before they can judge, like the hotalloc budget) set
// RunModule instead.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{AllocFree, ErrCheck, HotAlloc, LeakSafe, LockSafe, ShapeCheck}
}

// ByName resolves analyzer names (comma- or space-separated) against the
// suite, erroring on unknown names.
func ByName(names []string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range names {
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Pass carries one analyzer's view of one package plus the report sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	state   *runState
	ignores ignoreIndex
	diags   *[]Diagnostic
}

// Reportf records a diagnostic at pos unless an ignore directive suppresses
// it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportChain(pos, nil, format, args...)
}

// ReportChain records a diagnostic carrying an interprocedural call chain.
func (p *Pass) ReportChain(pos token.Pos, chain []string, format string, args ...any) {
	report(p.Fset, p.ignores, p.diags, p.Analyzer.Name, pos, chain, format, args...)
}

func report(fset *token.FileSet, ignores ignoreIndex, diags *[]Diagnostic,
	analyzer string, pos token.Pos, chain []string, format string, args ...any) {
	position := fset.Position(pos)
	if ignores.suppressed(analyzer, position) {
		return
	}
	*diags = append(*diags, Diagnostic{
		Analyzer: analyzer,
		File:     position.Filename,
		Line:     position.Line,
		Column:   position.Column,
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// TypeOf returns the type of expr, or nil.
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	if tv, ok := p.Info.Types[expr]; ok {
		return tv.Type
	}
	if id, ok := expr.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ModulePass carries a module-scoped analyzer's view of the whole run.
type ModulePass struct {
	Analyzer *Analyzer
	Prog     *Program
	// Pkgs are the packages selected for this run (fixtures included);
	// diagnostics should be confined to them, though the call graph spans
	// the whole module.
	Pkgs []*Package

	state   *runState
	opts    *RunOptions
	ignores ignoreIndex
	diags   *[]Diagnostic
}

// Reportf records a diagnostic at pos unless an ignore directive suppresses
// it.
func (mp *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	report(mp.state.fset, mp.ignores, mp.diags, mp.Analyzer.Name, pos, nil, format, args...)
}

// RunOptions tunes RunOpts beyond plain diagnostics. The zero value matches
// Run. Timing, HotSites, and Shrunk are outputs, filled when requested.
type RunOptions struct {
	// StaleIgnores appends a "vet-ignore" diagnostic for every suppression
	// directive that suppressed nothing, provided every analyzer it names
	// actually ran (an empty-list directive requires the full suite).
	StaleIgnores bool
	// HotBaseline, when set, gates the hotalloc analyzer: allocation counts
	// above the baseline become diagnostics, counts below it are collected
	// into Shrunk as advisories.
	HotBaseline *HotBaseline
	// RecordHotSites asks hotalloc to fill HotSites with the current
	// per-root allocation counts (used by -baseline write and summaries).
	RecordHotSites bool
	// Timing, when non-nil, accumulates wall time per analyzer, plus a
	// "callgraph" pseudo-entry for the shared graph construction.
	Timing map[string]time.Duration

	// HotSites receives the current hotalloc counts when RecordHotSites is
	// set (or a baseline gate runs).
	HotSites *HotBaseline
	// Shrunk receives one line per baseline entry the module no longer
	// reaches, advising a baseline rewrite.
	Shrunk []string
}

// Run executes the given analyzers over the given packages and returns the
// merged diagnostics sorted by position.
func Run(prog *Program, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunOpts(prog, pkgs, analyzers, nil)
}

// RunOpts is Run with options: stale-ignore detection, the hotalloc
// baseline gate, and per-analyzer timing.
func RunOpts(prog *Program, pkgs []*Package, analyzers []*Analyzer, opts *RunOptions) []Diagnostic {
	if opts == nil {
		opts = &RunOptions{}
	}
	var diags []Diagnostic
	ignores := buildIgnoreIndex(prog.Fset, allFiles(pkgs))
	state := newRunState(prog, pkgs, opts)
	for _, a := range analyzers {
		start := time.Now()
		if a.RunModule != nil {
			a.RunModule(&ModulePass{
				Analyzer: a,
				Prog:     prog,
				Pkgs:     pkgs,
				state:    state,
				opts:     opts,
				ignores:  ignores,
				diags:    &diags,
			})
		} else {
			for _, pkg := range pkgs {
				a.Run(&Pass{
					Analyzer: a,
					Fset:     prog.Fset,
					Files:    pkg.Files,
					Pkg:      pkg.Types,
					Info:     pkg.Info,
					state:    state,
					ignores:  ignores,
					diags:    &diags,
				})
			}
		}
		if opts.Timing != nil {
			opts.Timing[a.Name] += time.Since(start)
		}
	}
	if opts.StaleIgnores {
		reportStaleIgnores(prog.Fset, ignores, analyzers, &diags)
	}
	sortDiagnostics(diags)
	return diags
}

// sortDiagnostics orders findings deterministically regardless of package
// selection order or analyzer interleaving: by file, position, analyzer,
// then message.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

func allFiles(pkgs []*Package) []*ast.File {
	var files []*ast.File
	for _, pkg := range pkgs {
		files = append(files, pkg.Files...)
	}
	return files
}

// reportStaleIgnores emits a diagnostic for every directive whose hit count
// stayed at zero, provided this run gave each analyzer it names a chance to
// fire (otherwise silence proves nothing).
func reportStaleIgnores(fset *token.FileSet, ignores ignoreIndex, analyzers []*Analyzer, diags *[]Diagnostic) {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	fullSuite := len(ran) == len(All())
	seen := make(map[*ignoreDirective]bool)
	var stale []*ignoreDirective
	for _, byLine := range ignores {
		for _, ds := range byLine {
			for _, d := range ds {
				if seen[d] || d.hits > 0 {
					seen[d] = true
					continue
				}
				seen[d] = true
				covered := fullSuite
				if len(d.analyzers) > 0 {
					covered = true
					for name := range d.analyzers {
						if !ran[name] {
							covered = false
							break
						}
					}
				}
				if covered {
					stale = append(stale, d)
				}
			}
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		a, b := stale[i].pos, stale[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, d := range stale {
		names := "any analyzer"
		if len(d.analyzers) > 0 {
			list := make([]string, 0, len(d.analyzers))
			for name := range d.analyzers {
				list = append(list, name)
			}
			sort.Strings(list)
			names = strings.Join(list, ", ")
		}
		*diags = append(*diags, Diagnostic{
			Analyzer: "vet-ignore",
			File:     d.pos.Filename,
			Line:     d.pos.Line,
			Column:   d.pos.Column,
			Message:  fmt.Sprintf("stale suppression: no %s diagnostic here anymore; remove the directive", names),
		})
	}
}

// ignoreDirective is the parsed form of one //buffalo:vet-ignore comment.
// Suppressions count hits so unused directives can be reported as stale.
type ignoreDirective struct {
	analyzers map[string]bool // empty means all analyzers
	pos       token.Position
	hits      int
}

func (d *ignoreDirective) matches(analyzer string) bool {
	return len(d.analyzers) == 0 || d.analyzers[analyzer]
}

// ignoreIndex maps file -> line -> directives that apply to that line. A
// directive covering two lines (its own and the next) appears twice but is
// one shared object, so a hit on either line marks it used.
type ignoreIndex map[string]map[int][]*ignoreDirective

func (ix ignoreIndex) suppressed(analyzer string, pos token.Position) bool {
	for _, d := range ix[pos.Filename][pos.Line] {
		if d.matches(analyzer) {
			d.hits++
			return true
		}
	}
	return false
}

// vetIgnorePrefix is the line-comment directive honored by every analyzer.
const vetIgnorePrefix = "buffalo:vet-ignore"

// buildIgnoreIndex scans file comments for vet-ignore directives. A
// directive applies to the line it sits on; when the comment starts its
// line (a standalone comment), it also applies to the following line.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) ignoreIndex {
	ix := make(ignoreIndex)
	sources := make(map[string][]byte)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, vetIgnorePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				d := parseIgnore(rest)
				d.pos = pos
				byLine := ix[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]*ignoreDirective)
					ix[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d)
				if startsLine(sources, pos) {
					byLine[pos.Line+1] = append(byLine[pos.Line+1], d)
				}
			}
		}
	}
	return ix
}

// parseIgnore parses the analyzer list following the directive prefix. The
// list ends at the first token that is not a known separator-joined word;
// anything after it is treated as free-form justification.
func parseIgnore(rest string) *ignoreDirective {
	d := &ignoreDirective{analyzers: make(map[string]bool)}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return d
	}
	fields := strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
	for _, f := range fields {
		known := false
		for _, a := range All() {
			if a.Name == f {
				known = true
				break
			}
		}
		if !known {
			break // start of the justification text
		}
		d.analyzers[f] = true
	}
	return d
}

// startsLine reports whether only whitespace precedes pos on its source
// line (so the directive should cover the next line too). File contents are
// cached in sources across calls.
func startsLine(sources map[string][]byte, pos token.Position) bool {
	if pos.Column == 1 {
		return true
	}
	src, ok := sources[pos.Filename]
	if !ok {
		src, _ = os.ReadFile(pos.Filename)
		sources[pos.Filename] = src
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return false
	}
	return strings.TrimSpace(string(src[start:pos.Offset])) == ""
}
