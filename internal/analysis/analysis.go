// Package analysis implements buffalo-vet, a domain-aware static-analysis
// suite for this repository. It is stdlib-only: packages are parsed with
// go/parser and type-checked with go/types against the source importer, and
// each analyzer walks the typed ASTs looking for violations of the
// invariants Buffalo's memory-discipline results depend on:
//
//   - allocfree: simulated-GPU allocations must be freed or escape to an
//     owner, or the ledger's peak-memory curves silently corrupt.
//   - errcheck: error results must not be discarded; the memory estimator
//     and scheduler communicate OOM through errors.
//   - locksafe: no simulated-transfer, I/O, or ledger Alloc calls while a
//     sync.Mutex is held (deadlock and latency hazards under concurrency).
//   - shapecheck: literally visible tensor dimensions must be positive and
//     matmul-compatible.
//
// A diagnostic can be suppressed with a line directive:
//
//	//buffalo:vet-ignore <analyzer>[,<analyzer>...]  [reason]
//
// placed either at the end of the offending line or alone on the line
// directly above it. An empty analyzer list suppresses every analyzer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

// Diagnostic is one finding from one analyzer.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Column, d.Analyzer, d.Message)
}

// Analyzer is one named, independently enableable check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{AllocFree, ErrCheck, LockSafe, ShapeCheck}
}

// ByName resolves analyzer names (comma- or space-separated) against the
// suite, erroring on unknown names.
func ByName(names []string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range names {
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Pass carries one analyzer's view of one package plus the report sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	ignores ignoreIndex
	diags   *[]Diagnostic
}

// Reportf records a diagnostic at pos unless an ignore directive suppresses
// it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignores.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Column:   position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expr, or nil.
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	if tv, ok := p.Info.Types[expr]; ok {
		return tv.Type
	}
	if id, ok := expr.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Run executes the given analyzers over the given packages and returns the
// merged diagnostics sorted by position.
func Run(prog *Program, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := buildIgnoreIndex(prog.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     prog.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				ignores:  ignores,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ignoreDirective is the parsed form of one //buffalo:vet-ignore comment.
type ignoreDirective struct {
	analyzers map[string]bool // empty means all analyzers
}

func (d ignoreDirective) matches(analyzer string) bool {
	return len(d.analyzers) == 0 || d.analyzers[analyzer]
}

// ignoreIndex maps file -> line -> directives that apply to that line.
type ignoreIndex map[string]map[int][]ignoreDirective

func (ix ignoreIndex) suppressed(analyzer string, pos token.Position) bool {
	for _, d := range ix[pos.Filename][pos.Line] {
		if d.matches(analyzer) {
			return true
		}
	}
	return false
}

// vetIgnorePrefix is the line-comment directive honored by every analyzer.
const vetIgnorePrefix = "buffalo:vet-ignore"

// buildIgnoreIndex scans file comments for vet-ignore directives. A
// directive applies to the line it sits on; when the comment starts its
// line (a standalone comment), it also applies to the following line.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) ignoreIndex {
	ix := make(ignoreIndex)
	sources := make(map[string][]byte)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, vetIgnorePrefix)
				if !ok {
					continue
				}
				d := parseIgnore(rest)
				pos := fset.Position(c.Pos())
				byLine := ix[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]ignoreDirective)
					ix[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d)
				if startsLine(sources, pos) {
					byLine[pos.Line+1] = append(byLine[pos.Line+1], d)
				}
			}
		}
	}
	return ix
}

// parseIgnore parses the analyzer list following the directive prefix. The
// list ends at the first token that is not a known separator-joined word;
// anything after it is treated as free-form justification.
func parseIgnore(rest string) ignoreDirective {
	d := ignoreDirective{analyzers: make(map[string]bool)}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return d
	}
	fields := strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
	for _, f := range fields {
		known := false
		for _, a := range All() {
			if a.Name == f {
				known = true
				break
			}
		}
		if !known {
			break // start of the justification text
		}
		d.analyzers[f] = true
	}
	return d
}

// startsLine reports whether only whitespace precedes pos on its source
// line (so the directive should cover the next line too). File contents are
// cached in sources across calls.
func startsLine(sources map[string][]byte, pos token.Position) bool {
	if pos.Column == 1 {
		return true
	}
	src, ok := sources[pos.Filename]
	if !ok {
		src, _ = os.ReadFile(pos.Filename)
		sources[pos.Filename] = src
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return false
	}
	return strings.TrimSpace(string(src[start:pos.Offset])) == ""
}
