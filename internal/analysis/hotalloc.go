package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"buffalo/internal/analysis/callgraph"
)

// HotAlloc enforces the hot-path allocation budget (ROADMAP direction 5:
// zero-allocation hot path). Hot roots — the train-engine iteration,
// pipeline stage bodies, and the tensor/nn kernels — are declared either
// with a directive:
//
//	//buffalo:hot-root <name>
//
// on (or directly above) a function declaration or function literal, or
// implicitly for every top-level function of the packages in
// hotRootPackages. Every allocation site in any function reachable from a
// root (over any call-graph edge, goroutines included — a spawned stage
// allocates on the hot path too) is counted per root:
//
//	make    make(...) of slices, maps, channels
//	new     new(T)
//	append  append growth
//	lit     slice/map composite literals and &T{...}
//	iface   value-to-interface boxing at call boundaries
//
// The counts are gated against a committed baseline
// (scripts/vet_hotalloc_baseline.json): any count above the baseline is a
// diagnostic, any count below it is an advisory to rewrite the baseline, so
// the static number can only move in a reviewed commit — before a single
// benchmark runs.
//
// HotAlloc is module-scoped (RunModule): budgets only make sense over the
// merged whole-module reachability, not per package. Without a baseline or
// a recording request the analyzer is silent.
var HotAlloc = &Analyzer{
	Name:      "hotalloc",
	Doc:       "allocation sites reachable from hot roots stay within the committed baseline",
	RunModule: runHotAlloc,
}

// hotRootPrefix is the comment directive declaring a hot root.
const hotRootPrefix = "buffalo:hot-root"

// hotRootPackages maps import-path suffixes to implicit root names: every
// top-level function in a matching package is a member of that root.
var hotRootPackages = map[string]string{
	"internal/tensor": "tensor-kernels",
	"internal/nn":     "nn-kernels",
}

// allocKinds is the stable order the site kinds are reported in.
var allocKinds = []string{"make", "new", "append", "lit", "iface"}

func runHotAlloc(mp *ModulePass) {
	opts := mp.opts
	if opts.HotBaseline == nil && !opts.RecordHotSites {
		return
	}
	s := mp.state
	g := s.Graph()
	roots := collectHotRoots(mp, g)
	if len(roots) == 0 {
		return
	}
	sites := make(map[*callgraph.Node]map[string]*siteCount)
	current := NewHotBaseline()
	nodeByName := make(map[string]*callgraph.Node)
	rootNames := make([]string, 0, len(roots))
	for name := range roots {
		rootNames = append(rootNames, name)
	}
	sort.Strings(rootNames)
	for _, rootName := range rootNames {
		for n := range reachAllEdges(roots[rootName]) {
			counts := sites[n]
			if counts == nil {
				counts = countAllocSites(n)
				sites[n] = counts
			}
			for kind, sc := range counts {
				current.Add(rootName, n.Name, kind, sc.count)
			}
			nodeByName[n.Name] = n
		}
	}
	if opts.RecordHotSites || opts.HotBaseline != nil {
		opts.HotSites = current
	}
	if opts.HotBaseline == nil {
		return
	}
	gateHotBaseline(mp, opts.HotBaseline, current, sites, nodeByName)
}

// siteCount is the per-(function, kind) tally plus the first site position,
// where a budget overrun is reported.
type siteCount struct {
	count int
	first token.Pos
}

// gateHotBaseline compares current counts against the baseline: overruns
// become diagnostics at the first offending site, underruns become Shrunk
// advisories so the baseline can be tightened with -baseline write.
func gateHotBaseline(mp *ModulePass, base, current *HotBaseline,
	sites map[*callgraph.Node]map[string]*siteCount, nodeByName map[string]*callgraph.Node) {
	rootNames := sortedKeys(current.Roots)
	for _, root := range rootNames {
		rb := current.Roots[root]
		for _, fn := range sortedKeys(rb.Funcs) {
			for _, kind := range allocKinds {
				cur := rb.Funcs[fn][kind]
				budget := base.Count(root, fn, kind)
				if cur > budget {
					pos := token.NoPos
					if n := nodeByName[fn]; n != nil {
						if sc := sites[n][kind]; sc != nil {
							pos = sc.first
						}
					}
					mp.Reportf(pos,
						"hot-path allocation budget exceeded: %d %s site(s) in %s reachable from root %q, baseline allows %d (optimize, justify with //buffalo:vet-ignore hotalloc, or re-baseline)",
						cur, kind, fn, root, budget)
				}
			}
		}
	}
	// Underruns: anything the baseline still budgets that the module no
	// longer reaches.
	for _, root := range sortedKeys(base.Roots) {
		brb := base.Roots[root]
		crb := current.Roots[root]
		if crb == nil {
			mp.opts.Shrunk = append(mp.opts.Shrunk,
				"root "+root+" is gone from the module; rewrite the baseline")
			continue
		}
		for _, fn := range sortedKeys(brb.Funcs) {
			for _, kind := range allocKinds {
				budget := brb.Funcs[fn][kind]
				cur := 0
				if crb.Funcs[fn] != nil {
					cur = crb.Funcs[fn][kind]
				}
				if cur < budget {
					mp.opts.Shrunk = append(mp.opts.Shrunk, fmt.Sprintf(
						"root %s: %s %s shrank %d -> %d; tighten with -baseline write",
						root, fn, kind, budget, cur))
				}
			}
		}
	}
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectHotRoots gathers root membership from directives and the implicit
// package table, over the selected packages only.
func collectHotRoots(mp *ModulePass, g *callgraph.Graph) map[string][]*callgraph.Node {
	roots := make(map[string][]*callgraph.Node)
	for _, pkg := range mp.Pkgs {
		pkgRoot := ""
		for suffix, name := range hotRootPackages {
			if pkg.ImportPath == suffix || strings.HasSuffix(pkg.ImportPath, "/"+suffix) {
				pkgRoot = name
				break
			}
		}
		directives := hotRootDirectives(mp.Prog.Fset, pkg.Files)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				node := g.NodeOf(fn)
				if node == nil {
					continue
				}
				if name := directiveAt(directives, mp.Prog.Fset, fd.Pos()); name != "" {
					roots[name] = append(roots[name], node)
				} else if pkgRoot != "" {
					roots[pkgRoot] = append(roots[pkgRoot], node)
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				if name := directiveAt(directives, mp.Prog.Fset, lit.Pos()); name != "" {
					if node := g.NodeOfLit(lit); node != nil {
						roots[name] = append(roots[name], node)
					}
				}
				return true
			})
		}
	}
	return roots
}

// hotRootDirectives indexes //buffalo:hot-root comments by file and line; a
// standalone directive also covers the next line, mirroring vet-ignore.
func hotRootDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int]string {
	ix := make(map[string]map[int]string)
	sources := make(map[string][]byte)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), hotRootPrefix)
				if !ok {
					continue
				}
				name := strings.TrimSpace(rest)
				if name == "" {
					continue
				}
				if i := strings.IndexAny(name, " \t"); i >= 0 {
					name = name[:i]
				}
				pos := fset.Position(c.Pos())
				byLine := ix[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]string)
					ix[pos.Filename] = byLine
				}
				byLine[pos.Line] = name
				if startsLine(sources, pos) {
					byLine[pos.Line+1] = name
				}
			}
		}
	}
	return ix
}

// directiveAt resolves the hot-root name covering a declaration position,
// looking at the declaration's own line (covers doc comments ending just
// above and standalone directives on the previous line).
func directiveAt(ix map[string]map[int]string, fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return ix[p.Filename][p.Line]
}

// reachAllEdges returns every node reachable from the members over any
// edge kind — spawned goroutines and stored callbacks run on the hot path
// as much as direct calls do.
func reachAllEdges(members []*callgraph.Node) map[*callgraph.Node]bool {
	seen := make(map[*callgraph.Node]bool)
	queue := append([]*callgraph.Node(nil), members...)
	for _, m := range members {
		seen[m] = true
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				queue = append(queue, e.Callee)
			}
		}
	}
	return seen
}

// countAllocSites tallies allocation sites in a node's own body.
func countAllocSites(n *callgraph.Node) map[string]*siteCount {
	counts := make(map[string]*siteCount)
	add := func(kind string, pos token.Pos) {
		sc := counts[kind]
		if sc == nil {
			sc = &siteCount{first: pos}
			counts[kind] = sc
		}
		sc.count++
	}
	info := n.Pkg.Info
	inspectOwnBody(n, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.CallExpr:
			if name, ok := builtinName(info, v); ok {
				switch name {
				case "make":
					add("make", v.Pos())
				case "new":
					add("new", v.Pos())
				case "append":
					add("append", v.Pos())
				}
				return true
			}
			for _, pos := range boxedArgs(info, v) {
				add("iface", pos)
			}
		case *ast.CompositeLit:
			switch info.TypeOf(v).Underlying().(type) {
			case *types.Slice, *types.Map:
				add("lit", v.Pos())
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if _, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok {
					add("lit", v.Pos())
				}
			}
		}
		return true
	})
	return counts
}

// builtinName reports whether a call invokes a builtin, and which.
func builtinName(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return "", false
	}
	return id.Name, true
}

// boxedArgs returns the positions of call arguments whose concrete value is
// boxed into an interface parameter (including variadic ...any), plus
// explicit conversions to interface types. Pointer-shaped values (pointers,
// channels, maps, funcs, unsafe pointers) fit in an interface word without
// allocating and are not counted.
func boxedArgs(info *types.Info, call *ast.CallExpr) []token.Pos {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	if tv.IsType() {
		// Conversion T(x): boxing when T is an interface and x concrete.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(info.TypeOf(call.Args[0])) {
			return []token.Pos{call.Args[0].Pos()}
		}
		return nil
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return nil
	}
	params := sig.Params()
	var out []token.Pos
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if boxes(info.TypeOf(arg)) {
			out = append(out, arg.Pos())
		}
	}
	return out
}

// boxes reports whether storing a value of type t in an interface
// allocates: concrete and wider than the single pointer word the interface
// holds directly.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		if b.Kind() == types.UntypedNil {
			return false
		}
	}
	if types.IsInterface(t) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	return true
}
