package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// staticCallee resolves the *types.Func a call statically invokes: a
// package-level function, a method (value or expression form), or nil for
// indirect calls, conversions, and builtins.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}

// funcPkgPath returns the import path of the package declaring fn, or "".
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// recvTypeName returns the name of fn's receiver's named type (pointer
// receivers are dereferenced), or "" for non-methods.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// isDeviceMethod reports whether fn is the named method on a type declared
// in the simulated-device package. Matching is by import-path suffix so the
// analyzers also recognize the package when loaded from a fixture tree.
func isDeviceMethod(fn *types.Func, typeName, method string) bool {
	if fn == nil || fn.Name() != method {
		return false
	}
	path := funcPkgPath(fn)
	if path != "buffalo/internal/device" && !strings.HasSuffix(path, "/internal/device") {
		return false
	}
	return recvTypeName(fn) == typeName
}

// returnsError reports whether t (a single type or tuple) contains the
// built-in error type.
func returnsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// isErrorType reports whether t is exactly the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}

// exprKey renders a (small) expression as a stable string key, used to
// identify which mutex an x.mu.Lock() call refers to. Two occurrences of
// the same source expression must produce the same key (so Lock/Unlock
// pairs match up), and two different expressions must not collapse to one
// key (or locksafe would treat two distinct unknown mutexes as the same
// held lock). Structurally renderable shapes get a spelled-out key;
// anything else gets a key unique to its token position, which keeps
// distinct unknowns distinct at the cost of never pairing an unknown Lock
// with its Unlock — a safe direction (the lock just stays held).
func exprKey(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprKey(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprKey(v.X) + "[" + exprKey(v.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprKey(v.X)
	case *ast.UnaryExpr:
		return v.Op.String() + exprKey(v.X)
	case *ast.BinaryExpr:
		return exprKey(v.X) + v.Op.String() + exprKey(v.Y)
	case *ast.CallExpr:
		args := make([]string, 0, len(v.Args))
		for _, a := range v.Args {
			args = append(args, exprKey(a))
		}
		return exprKey(v.Fun) + "(" + strings.Join(args, ",") + ")"
	case *ast.TypeAssertExpr:
		return exprKey(v.X) + ".(type)"
	case *ast.BasicLit:
		return v.Value
	default:
		return fmt.Sprintf("?:%d", e.Pos())
	}
}
