package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockSafe flags blocking work performed while a sync.Mutex (or RWMutex
// write lock) is held: simulated device transfers, ledger allocations,
// all-reduces, real I/O (os, io, net), time.Sleep, and blocking channel
// operations (sends, receives, range-over-channel, and selects without a
// default clause; a select with a default never blocks, which is exactly
// the obs tap's offer pattern). Buffalo's device ledger serializes every
// allocator on one mutex, so blocking inside a critical section stalls
// every trainer goroutine — and taking the ledger lock around a call that
// itself locks the ledger deadlocks outright.
//
// The check is interprocedural: a call under a held lock is also flagged
// when any function reachable from it over synchronous call edges (static,
// interface-dispatch, invoked or callback literals) performs a blocking
// operation, and the diagnostic carries the offending call chain. Work
// handed to another goroutine (go statements) does not block the critical
// section and is not followed.
//
// The walk is a statement-ordered approximation, not a CFG: a lock is
// considered held from x.Lock() (or from function entry to the end for
// defer x.Unlock()) until a matching x.Unlock() at the same nesting level.
// Function literals are analyzed independently with no locks held.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "no transfers, I/O, or ledger allocations while a mutex is held, transitively",
	Run:  runLockSafe,
}

// locksafeTransitive gates the interprocedural extension; tests flip it off
// to demonstrate what the intraprocedural analyzer alone misses.
var locksafeTransitive = true

func runLockSafe(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					walkLocked(p, fn.Body.List, map[string]bool{})
				}
			case *ast.FuncLit:
				walkLocked(p, fn.Body.List, map[string]bool{})
			}
			return true
		})
	}
}

// walkLocked walks one statement list tracking which mutexes are held.
// Nested blocks inherit a copy of the current state; state changes inside a
// branch do not propagate past it (both branches of an if may lock, but
// only statements inside the branch see that lock).
func walkLocked(p *Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if key, op, ok := lockOp(p, s.X); ok {
				switch op {
				case "Lock", "RLock":
					held[key] = true
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				continue
			}
			reportBlockingCalls(p, s, held)
		case *ast.SendStmt:
			if len(held) > 0 {
				p.Reportf(s.Arrow, "channel send on %s while holding %s", exprKey(s.Chan), heldList(held))
			}
			reportBlockingCalls(p, s.Value, held)
		case *ast.DeferStmt:
			if key, op, ok := lockOp(p, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
				// Deferred unlock: the mutex stays held for the remainder
				// of the function, which is exactly when blocking calls
				// after this point are hazardous.
				held[key] = true
				continue
			}
			reportBlockingCalls(p, s, held)
		case *ast.BlockStmt:
			walkLocked(p, s.List, copyHeld(held))
		case *ast.IfStmt:
			reportBlockingCalls(p, s.Cond, held)
			if s.Init != nil {
				reportBlockingCalls(p, s.Init, held)
			}
			walkLocked(p, s.Body.List, copyHeld(held))
			if s.Else != nil {
				walkLocked(p, []ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			if s.Init != nil {
				reportBlockingCalls(p, s.Init, held)
			}
			if s.Cond != nil {
				reportBlockingCalls(p, s.Cond, held)
			}
			walkLocked(p, s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			if len(held) > 0 && isChanExpr(p.Info, s.X) {
				p.Reportf(s.For, "range over channel %s while holding %s", exprKey(s.X), heldList(held))
			}
			reportBlockingCalls(p, s.X, held)
			walkLocked(p, s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			if s.Tag != nil {
				reportBlockingCalls(p, s.Tag, held)
			}
			walkLocked(p, s.Body.List, copyHeld(held))
		case *ast.TypeSwitchStmt:
			walkLocked(p, s.Body.List, copyHeld(held))
		case *ast.SelectStmt:
			// A select with a default clause polls and moves on — the
			// lock-cheap tap-offer shape. Without one, the goroutine parks
			// on the channels with the lock held.
			if len(held) > 0 && !selectHasDefault(s) {
				p.Reportf(s.Select, "blocking select (no default) while holding %s", heldList(held))
			}
			walkLocked(p, s.Body.List, copyHeld(held))
		case *ast.CaseClause:
			walkLocked(p, s.Body, copyHeld(held))
		case *ast.CommClause:
			walkLocked(p, s.Body, copyHeld(held))
		case *ast.LabeledStmt:
			walkLocked(p, []ast.Stmt{s.Stmt}, held)
		default:
			reportBlockingCalls(p, stmt, held)
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// lockOp recognizes x.Lock()/x.Unlock()/x.RLock()/x.RUnlock() on a
// sync.Mutex or sync.RWMutex and returns the mutex key and operation.
func lockOp(p *Pass, e ast.Expr) (key, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn := staticCallee(p.Info, call)
	if fn == nil || funcPkgPath(fn) != "sync" {
		return "", "", false
	}
	name := fn.Name()
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return exprKey(sel.X), name, true
	}
	return "", "", false
}

// reportBlockingCalls inspects node (a statement or expression) for calls
// that must not run under a lock. Function literals are skipped: their
// bodies execute later, under their own analysis.
func reportBlockingCalls(p *Pass, node ast.Node, held map[string]bool) {
	if len(held) == 0 || node == nil {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if u, isRecv := n.(*ast.UnaryExpr); isRecv && u.Op == token.ARROW {
			p.Reportf(u.OpPos, "channel receive from %s while holding %s", exprKey(u.X), heldList(held))
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if why := blockingCallReason(p.Info, call); why != "" {
			p.Reportf(call.Pos(), "%s while holding %s", why, heldList(held))
			return true
		}
		reportTransitiveBlocking(p, call, held)
		return true
	})
}

// reportTransitiveBlocking flags a call whose callee — resolved through the
// module call graph, including interface dispatch and callback literals —
// reaches a blocking operation. Lock operations themselves are exempt (the
// lock tracking above models them), as is anything without a resolvable
// module callee.
func reportTransitiveBlocking(p *Pass, call *ast.CallExpr, held map[string]bool) {
	if !locksafeTransitive || p.state == nil {
		return
	}
	if _, _, isLock := lockOp(p, call); isLock {
		return
	}
	blocking := p.state.Blocking()
	for _, e := range p.state.Graph().EdgesAt(call) {
		if !syncEdge(e) || !blocking.Reaches(e.Callee) {
			continue
		}
		chain := p.state.BlockChain(e.Callee)
		reason := "a blocking operation"
		if len(chain) > 0 {
			reason = chain[len(chain)-1]
		}
		p.ReportChain(call.Pos(), chain, "call to %s reaches %s while holding %s",
			e.Callee.Name, reason, heldList(held))
		return
	}
}

// blockingCallReason classifies a call that should not run under a mutex,
// returning a human-readable reason or "".
func blockingCallReason(info *types.Info, call *ast.CallExpr) string {
	fn := staticCallee(info, call)
	if fn == nil {
		return ""
	}
	if isDeviceMethod(fn, "GPU", "Alloc") {
		return "ledger allocation GPU.Alloc"
	}
	if isDeviceMethod(fn, "GPU", "TransferH2D") {
		return "simulated transfer GPU.TransferH2D"
	}
	if isDeviceMethod(fn, "GPU", "TransferH2DAsync") {
		// Async issue still books copy-engine time under the ledger lock.
		return "simulated transfer GPU.TransferH2DAsync"
	}
	if isDeviceMethod(fn, "GPU", "WaitTransfer") {
		return "simulated stall GPU.WaitTransfer"
	}
	if isDeviceMethod(fn, "Cluster", "AllReduce") {
		return "simulated collective Cluster.AllReduce"
	}
	if isDeviceMethod(fn, "Cluster", "AllReduceAsync") {
		// Async launch still books interconnect time under the cluster's
		// comm-engine clock; holding a mutex across it serializes every
		// replica's bucket launches.
		return "simulated collective Cluster.AllReduceAsync"
	}
	if isDeviceMethod(fn, "Cluster", "ReduceScatterAsync") {
		// Same comm-engine booking as AllReduceAsync: the sharded combine
		// launches one reduce-scatter per bucket, and a mutex held across
		// the launches serializes every replica's bucket stream.
		return "simulated collective Cluster.ReduceScatterAsync"
	}
	if isDeviceMethod(fn, "Cluster", "AllGatherAsync") {
		return "simulated collective Cluster.AllGatherAsync"
	}
	if isDeviceMethod(fn, "Cluster", "WaitReduce") {
		return "simulated stall Cluster.WaitReduce"
	}
	path := funcPkgPath(fn)
	switch path {
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "os", "io", "io/ioutil", "net", "net/http", "bufio":
		// Method values on sync/atomic types come from "sync"; anything
		// declared in an I/O package is presumed to touch the outside
		// world.
		return "I/O call " + fn.FullName()
	case "fmt":
		if strings.HasPrefix(fn.Name(), "Fprint") {
			return "I/O call " + fn.FullName()
		}
	}
	return ""
}

// selectHasDefault reports whether a select statement carries a default
// clause, making it a non-blocking poll.
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// isChanExpr reports whether e has channel type (after unwrapping named
// types), so ranging over it parks the goroutine between elements.
func isChanExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// heldList renders the held mutex set for a diagnostic.
func heldList(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	if len(names) == 1 {
		return "mutex " + names[0]
	}
	sortStrings(names)
	return "mutexes " + strings.Join(names, ", ")
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
